//! 2D coordinates.
//!
//! The paper evaluates topological relationship queries in Euclidean space
//! R² (§2.3, Equation 2); Z coordinates are only used by the affine layer for
//! the R³ matrices of Equation 3 and are not part of the relate engine, so the
//! core coordinate type is two dimensional.

use std::fmt;

/// A 2D coordinate with `f64` components.
///
/// `Coord` deliberately does not implement `Eq`/`Hash` on raw floats; exact
/// equality is provided by [`Coord::approx_eq`] (bitwise on finite values) and
/// by [`Coord::key`] which produces a hashable bit-pattern key used by the
/// noding and canonicalization code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coord {
    /// X (easting / longitude-like) component.
    pub x: f64,
    /// Y (northing / latitude-like) component.
    pub y: f64,
}

impl Coord {
    /// Creates a new coordinate.
    pub const fn new(x: f64, y: f64) -> Self {
        Coord { x, y }
    }

    /// The origin `(0, 0)`.
    pub const fn zero() -> Self {
        Coord { x: 0.0, y: 0.0 }
    }

    /// Exact component-wise equality (the representation the engine stores is
    /// compared bit-for-bit after normalising `-0.0` to `0.0`).
    pub fn approx_eq(&self, other: &Coord) -> bool {
        normalize_zero(self.x) == normalize_zero(other.x)
            && normalize_zero(self.y) == normalize_zero(other.y)
    }

    /// A hashable key made of the two components' bit patterns, used to
    /// deduplicate vertices during noding and canonicalization.
    pub fn key(&self) -> (u64, u64) {
        (
            normalize_zero(self.x).to_bits(),
            normalize_zero(self.y).to_bits(),
        )
    }

    /// Euclidean distance to another coordinate.
    pub fn distance(&self, other: &Coord) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when only comparing).
    pub fn distance_sq(&self, other: &Coord) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint between `self` and `other`.
    pub fn midpoint(&self, other: &Coord) -> Coord {
        Coord::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Returns `true` when both components are finite.
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Lexicographic comparison (x first, then y), used when canonicalizing
    /// LINESTRING direction (§4.3 value level: "comparing the values of the
    /// endpoints in the order of the x-axis, y-axis").
    pub fn lex_cmp(&self, other: &Coord) -> std::cmp::Ordering {
        self.x
            .partial_cmp(&other.x)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                self.y
                    .partial_cmp(&other.y)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    }
}

fn normalize_zero(v: f64) -> f64 {
    if v == 0.0 {
        0.0
    } else {
        v
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", fmt_f64(self.x), fmt_f64(self.y))
    }
}

impl From<(f64, f64)> for Coord {
    fn from(value: (f64, f64)) -> Self {
        Coord::new(value.0, value.1)
    }
}

impl From<[f64; 2]> for Coord {
    fn from(value: [f64; 2]) -> Self {
        Coord::new(value[0], value[1])
    }
}

/// Formats a float the way WKT output expects: integers without a trailing
/// `.0`, everything else with the shortest round-trippable representation.
pub fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let c = Coord::new(1.5, -2.0);
        assert_eq!(c.x, 1.5);
        assert_eq!(c.y, -2.0);
        assert!(c.is_finite());
    }

    #[test]
    fn zero_is_origin() {
        assert_eq!(Coord::zero(), Coord::new(0.0, 0.0));
    }

    #[test]
    fn approx_eq_handles_negative_zero() {
        assert!(Coord::new(0.0, 1.0).approx_eq(&Coord::new(-0.0, 1.0)));
        assert!(!Coord::new(0.0, 1.0).approx_eq(&Coord::new(0.0, 1.1)));
    }

    #[test]
    fn key_dedups_negative_zero() {
        assert_eq!(Coord::new(-0.0, 2.0).key(), Coord::new(0.0, 2.0).key());
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn midpoint_is_average() {
        let m = Coord::new(0.0, 0.0).midpoint(&Coord::new(2.0, 4.0));
        assert_eq!(m, Coord::new(1.0, 2.0));
    }

    #[test]
    fn lex_cmp_orders_by_x_then_y() {
        use std::cmp::Ordering;
        assert_eq!(
            Coord::new(0.0, 5.0).lex_cmp(&Coord::new(1.0, 0.0)),
            Ordering::Less
        );
        assert_eq!(
            Coord::new(1.0, 0.0).lex_cmp(&Coord::new(1.0, 3.0)),
            Ordering::Less
        );
        assert_eq!(
            Coord::new(1.0, 3.0).lex_cmp(&Coord::new(1.0, 3.0)),
            Ordering::Equal
        );
    }

    #[test]
    fn display_formats_integers_without_decimal() {
        assert_eq!(Coord::new(1.0, 2.5).to_string(), "1 2.5");
    }

    #[test]
    fn conversions() {
        assert_eq!(Coord::from((1.0, 2.0)), Coord::new(1.0, 2.0));
        assert_eq!(Coord::from([3.0, 4.0]), Coord::new(3.0, 4.0));
    }
}
