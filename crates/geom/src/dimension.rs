//! Geometric dimension model used by DE-9IM (§2.2 of the paper).
//!
//! The DE-9IM dimension calculator `D` returns `F` when an intersection is
//! empty and otherwise the topological dimension of the intersection
//! (0 = points, 1 = curves, 2 = areas). [`Dimension`] models exactly this
//! four-valued domain with the ordering `Empty < Zero < One < Two`, so that
//! "take the maximum dimension observed" (how the relate engine accumulates
//! matrix entries) is simply `max`.

use std::fmt;

/// The value domain of a DE-9IM matrix entry: `F`, `0`, `1`, or `2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dimension {
    /// The intersection is empty (`F` in DE-9IM notation).
    Empty,
    /// The intersection contains only points (dimension 0).
    Zero,
    /// The intersection contains curves (dimension 1).
    One,
    /// The intersection contains areas (dimension 2).
    Two,
}

impl Dimension {
    /// The DE-9IM character for this dimension: `F`, `0`, `1` or `2`.
    pub fn to_char(self) -> char {
        match self {
            Dimension::Empty => 'F',
            Dimension::Zero => '0',
            Dimension::One => '1',
            Dimension::Two => '2',
        }
    }

    /// Parses a DE-9IM matrix character. `T` and `*` are pattern characters,
    /// not dimensions, and are rejected here.
    pub fn from_char(c: char) -> Option<Dimension> {
        match c {
            'F' | 'f' => Some(Dimension::Empty),
            '0' => Some(Dimension::Zero),
            '1' => Some(Dimension::One),
            '2' => Some(Dimension::Two),
            _ => None,
        }
    }

    /// Whether the intersection this entry describes is non-empty.
    pub fn is_non_empty(self) -> bool {
        self != Dimension::Empty
    }

    /// Numeric dimension, with `None` for the empty set.
    pub fn value(self) -> Option<u8> {
        match self {
            Dimension::Empty => None,
            Dimension::Zero => Some(0),
            Dimension::One => Some(1),
            Dimension::Two => Some(2),
        }
    }

    /// Constructs a dimension from a numeric value (0, 1 or 2).
    pub fn from_value(v: u8) -> Option<Dimension> {
        match v {
            0 => Some(Dimension::Zero),
            1 => Some(Dimension::One),
            2 => Some(Dimension::Two),
            _ => None,
        }
    }
}

impl fmt::Display for Dimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_allows_max_accumulation() {
        assert!(Dimension::Empty < Dimension::Zero);
        assert!(Dimension::Zero < Dimension::One);
        assert!(Dimension::One < Dimension::Two);
        assert_eq!(Dimension::Zero.max(Dimension::Two), Dimension::Two);
    }

    #[test]
    fn char_round_trip() {
        for d in [
            Dimension::Empty,
            Dimension::Zero,
            Dimension::One,
            Dimension::Two,
        ] {
            assert_eq!(Dimension::from_char(d.to_char()), Some(d));
        }
        assert_eq!(Dimension::from_char('T'), None);
        assert_eq!(Dimension::from_char('*'), None);
    }

    #[test]
    fn value_round_trip() {
        assert_eq!(Dimension::Empty.value(), None);
        assert_eq!(Dimension::One.value(), Some(1));
        assert_eq!(Dimension::from_value(2), Some(Dimension::Two));
        assert_eq!(Dimension::from_value(3), None);
    }

    #[test]
    fn non_empty_check() {
        assert!(!Dimension::Empty.is_non_empty());
        assert!(Dimension::Zero.is_non_empty());
    }

    #[test]
    fn display_matches_de9im_notation() {
        assert_eq!(Dimension::Empty.to_string(), "F");
        assert_eq!(Dimension::Two.to_string(), "2");
    }
}
