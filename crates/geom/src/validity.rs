//! Semantic validity checks (OGC simple-feature validity, simplified).
//!
//! The random-shape strategy produces geometries that are "valid at the
//! syntax level, but not necessarily at the semantic level" (§4.1); engines
//! reject the semantically invalid ones with an error, which Spatter ignores.
//! The engine profiles differ in how strict they are (PostGIS/DuckDB reject
//! self-intersecting collection members in Listing 4 while MySQL accepts
//! them), so validity is a first-class, engine-configurable check.

use crate::coord::Coord;
use crate::geometry::Geometry;
use crate::orientation::{orientation, point_on_segment, Orientation};
use crate::types::{LineString, Polygon};

/// The outcome of a validity check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Validity {
    /// The geometry satisfies the checks.
    Valid,
    /// The geometry is invalid, with a reason string in the spirit of
    /// `ST_IsValidReason`.
    Invalid(String),
}

impl Validity {
    /// Whether the geometry was found valid.
    pub fn is_valid(&self) -> bool {
        matches!(self, Validity::Valid)
    }

    /// The reason, if invalid.
    pub fn reason(&self) -> Option<&str> {
        match self {
            Validity::Valid => None,
            Validity::Invalid(r) => Some(r),
        }
    }
}

/// Checks structural and semantic validity of a geometry.
///
/// The implemented rules are the ones the paper's bug discussion relies on:
/// linestrings need at least two distinct points, polygon rings must be
/// closed with at least four vertices and must not self-intersect, and
/// polygon rings must not cross each other.
pub fn check_validity(geometry: &Geometry) -> Validity {
    match geometry {
        Geometry::Point(_) => Validity::Valid,
        Geometry::MultiPoint(_) => Validity::Valid,
        Geometry::LineString(l) => check_linestring(l),
        Geometry::MultiLineString(m) => {
            for l in &m.lines {
                if let v @ Validity::Invalid(_) = check_linestring(l) {
                    return v;
                }
            }
            Validity::Valid
        }
        Geometry::Polygon(p) => check_polygon(p),
        Geometry::MultiPolygon(m) => {
            for p in &m.polygons {
                if let v @ Validity::Invalid(_) = check_polygon(p) {
                    return v;
                }
            }
            Validity::Valid
        }
        Geometry::GeometryCollection(c) => {
            for g in &c.geometries {
                if let v @ Validity::Invalid(_) = check_validity(g) {
                    return v;
                }
            }
            Validity::Valid
        }
    }
}

/// Convenience wrapper returning a boolean (`ST_IsValid`).
pub fn is_valid(geometry: &Geometry) -> bool {
    check_validity(geometry).is_valid()
}

fn check_linestring(line: &LineString) -> Validity {
    if line.is_empty() {
        return Validity::Valid;
    }
    if line.coords.len() < 2 {
        return Validity::Invalid("linestring has fewer than 2 points".into());
    }
    if line.coords.windows(2).all(|w| w[0].approx_eq(&w[1])) {
        return Validity::Invalid("linestring has no extent (all points identical)".into());
    }
    Validity::Valid
}

fn check_polygon(polygon: &Polygon) -> Validity {
    if polygon.is_empty() {
        return Validity::Valid;
    }
    for (idx, ring) in polygon.rings.iter().enumerate() {
        if ring.is_empty() {
            return Validity::Invalid(format!("ring {idx} is empty"));
        }
        if ring.coords.len() < 4 {
            return Validity::Invalid(format!("ring {idx} has fewer than 4 points"));
        }
        if !ring.coords[0].approx_eq(&ring.coords[ring.coords.len() - 1]) {
            return Validity::Invalid(format!("ring {idx} is not closed"));
        }
        if ring_self_intersects(ring) {
            return Validity::Invalid(format!("ring {idx} self-intersects"));
        }
    }
    // Ring-ring crossings (a hole crossing the shell) also make the polygon
    // invalid; shared isolated points are allowed.
    for i in 0..polygon.rings.len() {
        for j in (i + 1)..polygon.rings.len() {
            if rings_cross(&polygon.rings[i], &polygon.rings[j]) {
                return Validity::Invalid(format!("rings {i} and {j} cross"));
            }
        }
    }
    Validity::Valid
}

/// Whether two closed segments properly intersect (cross at a single interior
/// point of both).
fn segments_properly_intersect(p1: Coord, p2: Coord, q1: Coord, q2: Coord) -> bool {
    let o1 = orientation(p1, p2, q1);
    let o2 = orientation(p1, p2, q2);
    let o3 = orientation(q1, q2, p1);
    let o4 = orientation(q1, q2, p2);
    o1 != o2
        && o3 != o4
        && o1 != Orientation::Collinear
        && o2 != Orientation::Collinear
        && o3 != Orientation::Collinear
        && o4 != Orientation::Collinear
}

/// Whether two closed segments overlap collinearly over more than a point.
fn segments_overlap_collinear(p1: Coord, p2: Coord, q1: Coord, q2: Coord) -> bool {
    if orientation(p1, p2, q1) != Orientation::Collinear
        || orientation(p1, p2, q2) != Orientation::Collinear
    {
        return false;
    }
    // Project on the dominant axis and test interval overlap length > 0.
    let use_x = (p2.x - p1.x).abs() >= (p2.y - p1.y).abs();
    let (a1, a2, b1, b2) = if use_x {
        (p1.x, p2.x, q1.x, q2.x)
    } else {
        (p1.y, p2.y, q1.y, q2.y)
    };
    let (amin, amax) = (a1.min(a2), a1.max(a2));
    let (bmin, bmax) = (b1.min(b2), b1.max(b2));
    amax.min(bmax) - amin.max(bmin) > 0.0
}

fn ring_self_intersects(ring: &LineString) -> bool {
    let coords = &ring.coords;
    let n = coords.len();
    if n < 4 {
        return false;
    }
    // Segments are [i, i+1); the last vertex repeats the first.
    let seg_count = n - 1;
    for i in 0..seg_count {
        for j in (i + 1)..seg_count {
            let (p1, p2) = (coords[i], coords[i + 1]);
            let (q1, q2) = (coords[j], coords[j + 1]);
            if segments_properly_intersect(p1, p2, q1, q2) {
                return true;
            }
            if segments_overlap_collinear(p1, p2, q1, q2) {
                return true;
            }
            // Non-adjacent segments must not even touch at a point (other
            // than the ring's closing vertex).
            let adjacent = j == i + 1 || (i == 0 && j == seg_count - 1);
            if !adjacent {
                for (a, b, c) in [(q1, p1, p2), (q2, p1, p2), (p1, q1, q2), (p2, q1, q2)] {
                    if point_on_segment(a, b, c) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

fn rings_cross(a: &LineString, b: &LineString) -> bool {
    for sa in a.coords.windows(2) {
        for sb in b.coords.windows(2) {
            if segments_properly_intersect(sa[0], sa[1], sb[0], sb[1]) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wkt::parse_wkt;

    fn validity(wkt: &str) -> Validity {
        check_validity(&parse_wkt(wkt).unwrap())
    }

    #[test]
    fn points_are_always_valid() {
        assert!(validity("POINT(1 2)").is_valid());
        assert!(validity("POINT EMPTY").is_valid());
        assert!(validity("MULTIPOINT((1 1),EMPTY)").is_valid());
    }

    #[test]
    fn linestring_needs_two_distinct_points() {
        assert!(validity("LINESTRING(0 0,1 1)").is_valid());
        assert!(!validity("LINESTRING(1 1,1 1)").is_valid());
        assert!(validity("LINESTRING EMPTY").is_valid());
    }

    #[test]
    fn bowtie_polygon_is_invalid() {
        // The example from §4.1: self-intersecting boundary.
        let v = validity("POLYGON((0 0,1 1,0 1,1 0,0 0))");
        assert!(!v.is_valid());
        assert!(v.reason().unwrap().contains("self-intersects"));
    }

    #[test]
    fn simple_polygons_are_valid() {
        assert!(validity("POLYGON((0 0,10 0,10 10,0 10,0 0))").is_valid());
        assert!(validity("POLYGON((0 0,0 1,1 1,1 0,0 0))").is_valid());
        assert!(validity("POLYGON EMPTY").is_valid());
    }

    #[test]
    fn unclosed_or_short_rings_are_invalid() {
        assert!(!validity("POLYGON((0 0,1 0,1 1,0 1))").is_valid());
        assert!(!validity("POLYGON((0 0,1 0,0 0))").is_valid());
    }

    #[test]
    fn polygon_with_proper_hole_is_valid() {
        assert!(validity("POLYGON((0 0,10 0,10 10,0 10,0 0),(2 2,4 2,4 4,2 4,2 2))").is_valid());
    }

    #[test]
    fn polygon_with_crossing_hole_is_invalid() {
        assert!(!validity("POLYGON((0 0,10 0,10 10,0 10,0 0),(5 5,15 5,15 7,5 7,5 5))").is_valid());
    }

    #[test]
    fn collection_validity_recurses() {
        assert!(validity("GEOMETRYCOLLECTION(POINT(0 0),LINESTRING(0 0,1 0))").is_valid());
        assert!(!validity("GEOMETRYCOLLECTION(POLYGON((0 0,1 1,0 1,1 0,0 0)))").is_valid());
    }

    #[test]
    fn multipolygon_checks_each_member() {
        assert!(validity("MULTIPOLYGON(((0 0,5 0,0 5,0 0)))").is_valid());
        assert!(!validity("MULTIPOLYGON(((0 0,5 0,0 5,0 0)),((0 0,1 1,0 1,1 0,0 0)))").is_valid());
    }

    #[test]
    fn triangle_with_collinear_duplicate_edges_is_invalid() {
        // Degenerate "spike" ring: goes out and comes back along the same
        // segment.
        assert!(!validity("POLYGON((0 0,4 0,2 0,0 0))").is_valid());
    }
}
