//! Ring orientation and robust orientation predicates.
//!
//! Value-level canonicalization (§4.3) converts polygon loops to clockwise
//! orientation, and the relate engine needs to know on which side of a ring
//! segment a polygon's interior lies, so orientation is computed here once
//! and shared.

use crate::coord::Coord;
use crate::types::LineString;

/// Winding direction of a ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingOrientation {
    /// Counter-clockwise (positive signed area).
    CounterClockwise,
    /// Clockwise (negative signed area).
    Clockwise,
    /// Degenerate ring with zero area.
    Degenerate,
}

/// The orientation of the ordered triple `(a, b, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// `c` lies to the left of the directed line `a -> b`.
    CounterClockwise,
    /// `c` lies to the right of the directed line `a -> b`.
    Clockwise,
    /// The three points are collinear.
    Collinear,
}

/// Twice the signed area of the triangle `(a, b, c)`; positive when the
/// triple turns counter-clockwise.
///
/// Computed with a translation to `a` which keeps intermediate magnitudes
/// small; for the integer coordinates Spatter generates this is exact.
pub fn cross(a: Coord, b: Coord, c: Coord) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Orientation predicate for the ordered triple `(a, b, c)`.
pub fn orientation(a: Coord, b: Coord, c: Coord) -> Orientation {
    let v = cross(a, b, c);
    if v > 0.0 {
        Orientation::CounterClockwise
    } else if v < 0.0 {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// Signed area of a closed ring (positive for counter-clockwise rings) using
/// the shoelace formula. The ring is expected to repeat its first vertex at
/// the end; a missing closing vertex is tolerated.
pub fn signed_area(ring: &LineString) -> f64 {
    let coords = &ring.coords;
    if coords.len() < 3 {
        return 0.0;
    }
    let n = if coords[0].approx_eq(&coords[coords.len() - 1]) {
        coords.len() - 1
    } else {
        coords.len()
    };
    if n < 3 {
        return 0.0;
    }
    let origin = coords[0];
    let mut area2 = 0.0;
    for i in 0..n {
        let p = coords[i];
        let q = coords[(i + 1) % n];
        area2 += (p.x - origin.x) * (q.y - origin.y) - (q.x - origin.x) * (p.y - origin.y);
    }
    area2 / 2.0
}

/// The winding direction of a ring.
pub fn ring_orientation(ring: &LineString) -> RingOrientation {
    let a = signed_area(ring);
    if a > 0.0 {
        RingOrientation::CounterClockwise
    } else if a < 0.0 {
        RingOrientation::Clockwise
    } else {
        RingOrientation::Degenerate
    }
}

/// Whether point `p` lies on the closed segment `a-b`.
pub fn point_on_segment(p: Coord, a: Coord, b: Coord) -> bool {
    if orientation(a, b, p) != Orientation::Collinear {
        return false;
    }
    p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x) && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
}

/// Whether point `p` lies strictly inside the open segment `a-b` (collinear,
/// between the endpoints, and not equal to either endpoint).
pub fn point_in_segment_interior(p: Coord, a: Coord, b: Coord) -> bool {
    point_on_segment(p, a, b) && !p.approx_eq(&a) && !p.approx_eq(&b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(coords: &[(f64, f64)]) -> LineString {
        LineString::new(coords.iter().map(|&(x, y)| Coord::new(x, y)).collect())
    }

    #[test]
    fn orientation_predicate() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(1.0, 0.0);
        assert_eq!(
            orientation(a, b, Coord::new(0.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orientation(a, b, Coord::new(0.0, -1.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orientation(a, b, Coord::new(2.0, 0.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn signed_area_of_unit_square() {
        let ccw = ring(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0), (0.0, 0.0)]);
        assert_eq!(signed_area(&ccw), 1.0);
        let cw = ccw.reversed();
        assert_eq!(signed_area(&cw), -1.0);
    }

    #[test]
    fn signed_area_tolerates_unclosed_ring() {
        let open = ring(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]);
        assert_eq!(signed_area(&open), 4.0);
    }

    #[test]
    fn ring_orientation_detection() {
        let ccw = ring(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0), (0.0, 0.0)]);
        assert_eq!(ring_orientation(&ccw), RingOrientation::CounterClockwise);
        assert_eq!(
            ring_orientation(&ccw.reversed()),
            RingOrientation::Clockwise
        );
        let degenerate = ring(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (0.0, 0.0)]);
        assert_eq!(ring_orientation(&degenerate), RingOrientation::Degenerate);
    }

    #[test]
    fn point_on_segment_checks() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(4.0, 4.0);
        assert!(point_on_segment(Coord::new(2.0, 2.0), a, b));
        assert!(point_on_segment(a, a, b));
        assert!(!point_on_segment(Coord::new(2.0, 2.1), a, b));
        assert!(!point_on_segment(Coord::new(5.0, 5.0), a, b));
        assert!(point_in_segment_interior(Coord::new(1.0, 1.0), a, b));
        assert!(!point_in_segment_interior(a, a, b));
    }

    #[test]
    fn degenerate_rings_have_zero_area() {
        assert_eq!(signed_area(&ring(&[(0.0, 0.0), (1.0, 1.0)])), 0.0);
        assert_eq!(signed_area(&ring(&[])), 0.0);
    }
}
