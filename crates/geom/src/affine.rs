//! Affine transformations (§2.3 and §4.2, Algorithm 2 of the paper).
//!
//! An affine transformation `A(p) = A·p + b` is represented as the augmented
//! homogeneous matrix `M = [[A, b], [0, 1]]` of Equation 4. The paper's key
//! implementation decision — reproduced here — is that the random matrices
//! used to build Affine Equivalent Inputs are generated from **integers**, so
//! that the transformation itself never introduces floating-point error and
//! any discrepancy the oracle observes is attributable to the engine under
//! test (§4.2, "Avoiding precision issues").

use crate::coord::Coord;
use crate::error::{GeomError, GeomResult};
use crate::geometry::Geometry;
use std::fmt;

/// A 2D affine transformation stored as the six coefficients of
/// `x' = a·x + b·y + tx`, `y' = c·x + d·y + ty`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineMatrix {
    /// Coefficient of `x` in `x'`.
    pub a: f64,
    /// Coefficient of `y` in `x'`.
    pub b: f64,
    /// Coefficient of `x` in `y'`.
    pub c: f64,
    /// Coefficient of `y` in `y'`.
    pub d: f64,
    /// Translation in `x`.
    pub tx: f64,
    /// Translation in `y`.
    pub ty: f64,
}

impl AffineMatrix {
    /// The identity transformation `E` (used by canonicalization, §4.3).
    pub fn identity() -> Self {
        AffineMatrix {
            a: 1.0,
            b: 0.0,
            c: 0.0,
            d: 1.0,
            tx: 0.0,
            ty: 0.0,
        }
    }

    /// Builds a matrix from the linear part and translation vector.
    pub fn new(a: f64, b: f64, c: f64, d: f64, tx: f64, ty: f64) -> Self {
        AffineMatrix { a, b, c, d, tx, ty }
    }

    /// A pure translation by `(tx, ty)`.
    pub fn translation(tx: f64, ty: f64) -> Self {
        AffineMatrix {
            a: 1.0,
            b: 0.0,
            c: 0.0,
            d: 1.0,
            tx,
            ty,
        }
    }

    /// A scaling by `(sx, sy)` about the origin.
    pub fn scaling(sx: f64, sy: f64) -> Self {
        AffineMatrix {
            a: sx,
            b: 0.0,
            c: 0.0,
            d: sy,
            tx: 0.0,
            ty: 0.0,
        }
    }

    /// A rotation by `theta` radians about the origin.
    pub fn rotation(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        AffineMatrix {
            a: c,
            b: -s,
            c: s,
            d: c,
            tx: 0.0,
            ty: 0.0,
        }
    }

    /// A rotation by a multiple of 90 degrees, expressed exactly in integers
    /// (no trigonometry), which the AEI construction prefers to avoid
    /// rounding. `quarter_turns` is taken modulo 4.
    pub fn rotation_quarter(quarter_turns: i32) -> Self {
        match quarter_turns.rem_euclid(4) {
            0 => AffineMatrix::identity(),
            1 => AffineMatrix::new(0.0, -1.0, 1.0, 0.0, 0.0, 0.0),
            2 => AffineMatrix::new(-1.0, 0.0, 0.0, -1.0, 0.0, 0.0),
            _ => AffineMatrix::new(0.0, 1.0, -1.0, 0.0, 0.0, 0.0),
        }
    }

    /// A shear with factors `(shx, shy)` (Figure 4's fourth example).
    pub fn shearing(shx: f64, shy: f64) -> Self {
        AffineMatrix {
            a: 1.0,
            b: shx,
            c: shy,
            d: 1.0,
            tx: 0.0,
            ty: 0.0,
        }
    }

    /// Swaps the X and Y axes (the transformation of Listing 4's
    /// `ST_SwapXY`). It is affine with determinant -1.
    pub fn swap_xy() -> Self {
        AffineMatrix::new(0.0, 1.0, 1.0, 0.0, 0.0, 0.0)
    }

    /// The determinant of the linear part; the transformation is invertible
    /// iff this is non-zero (the paper requires invertibility, Definition 3.1).
    pub fn determinant(&self) -> f64 {
        self.a * self.d - self.b * self.c
    }

    /// Whether the matrix is invertible.
    pub fn is_invertible(&self) -> bool {
        let det = self.determinant();
        det != 0.0 && det.is_finite()
    }

    /// Whether the transformation preserves relative distances up to a common
    /// factor (rotation/translation/uniform scale but no shear), which is the
    /// condition §7 derives for applying AEI to KNN queries.
    pub fn preserves_relative_distance(&self) -> bool {
        // The linear part must be a scalar multiple of an orthogonal matrix:
        // columns orthogonal and of equal norm.
        let col1 = (self.a, self.c);
        let col2 = (self.b, self.d);
        let dot = col1.0 * col2.0 + col1.1 * col2.1;
        let n1 = col1.0 * col1.0 + col1.1 * col1.1;
        let n2 = col2.0 * col2.0 + col2.1 * col2.1;
        dot.abs() < 1e-12 && (n1 - n2).abs() < 1e-9 * n1.abs().max(1.0)
    }

    /// The inverse transformation.
    pub fn inverse(&self) -> GeomResult<AffineMatrix> {
        let det = self.determinant();
        if det == 0.0 || !det.is_finite() {
            return Err(GeomError::SingularMatrix);
        }
        let inv_a = self.d / det;
        let inv_b = -self.b / det;
        let inv_c = -self.c / det;
        let inv_d = self.a / det;
        Ok(AffineMatrix {
            a: inv_a,
            b: inv_b,
            c: inv_c,
            d: inv_d,
            tx: -(inv_a * self.tx + inv_b * self.ty),
            ty: -(inv_c * self.tx + inv_d * self.ty),
        })
    }

    /// Composition: `self.compose(other)` applies `other` first, then `self`.
    pub fn compose(&self, other: &AffineMatrix) -> AffineMatrix {
        AffineMatrix {
            a: self.a * other.a + self.b * other.c,
            b: self.a * other.b + self.b * other.d,
            c: self.c * other.a + self.d * other.c,
            d: self.c * other.b + self.d * other.d,
            tx: self.a * other.tx + self.b * other.ty + self.tx,
            ty: self.c * other.tx + self.d * other.ty + self.ty,
        }
    }

    /// Applies the transformation to a single coordinate (the `Affine`
    /// function of Algorithm 2: homogenize, left-multiply, dehomogenize).
    pub fn apply(&self, p: Coord) -> Coord {
        Coord::new(
            self.a * p.x + self.b * p.y + self.tx,
            self.c * p.x + self.d * p.y + self.ty,
        )
    }

    /// Whether all six coefficients are integers (the paper generates integer
    /// matrices to avoid precision false alarms).
    pub fn is_integer(&self) -> bool {
        [self.a, self.b, self.c, self.d, self.tx, self.ty]
            .iter()
            .all(|v| v.fract() == 0.0 && v.is_finite())
    }
}

impl fmt::Display for AffineMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[[{} {} {}], [{} {} {}], [0 0 1]]",
            self.a, self.b, self.tx, self.c, self.d, self.ty
        )
    }
}

/// An affine transformation that can be applied to whole geometries
/// (Algorithm 2's `Construct`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineTransform {
    matrix: AffineMatrix,
}

impl AffineTransform {
    /// Wraps a matrix, requiring it to be invertible: affine equivalence is
    /// only defined for invertible transformations (Definition 3.1/3.2).
    pub fn new(matrix: AffineMatrix) -> GeomResult<Self> {
        if !matrix.is_invertible() {
            return Err(GeomError::SingularMatrix);
        }
        Ok(AffineTransform { matrix })
    }

    /// The identity transformation.
    pub fn identity() -> Self {
        AffineTransform {
            matrix: AffineMatrix::identity(),
        }
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &AffineMatrix {
        &self.matrix
    }

    /// The inverse transformation (always exists by construction).
    pub fn inverse(&self) -> AffineTransform {
        AffineTransform {
            matrix: self
                .matrix
                .inverse()
                .expect("invertibility checked at construction"),
        }
    }

    /// Applies the transformation to a coordinate.
    pub fn apply_coord(&self, c: Coord) -> Coord {
        self.matrix.apply(c)
    }

    /// Returns a transformed copy of the geometry (every vertex mapped, the
    /// structure untouched) — Algorithm 2 lines 3–6.
    pub fn apply(&self, geometry: &Geometry) -> Geometry {
        let mut out = geometry.clone();
        out.map_coords(&mut |c| *c = self.matrix.apply(*c));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{LineString, Point};
    use crate::wkt::parse_wkt;

    #[test]
    fn identity_maps_points_to_themselves() {
        let t = AffineTransform::identity();
        let p = Coord::new(3.0, -4.0);
        assert_eq!(t.apply_coord(p), p);
    }

    #[test]
    fn translation_and_scaling() {
        let t = AffineMatrix::translation(10.0, -5.0);
        assert_eq!(t.apply(Coord::new(1.0, 2.0)), Coord::new(11.0, -3.0));
        let s = AffineMatrix::scaling(2.0, 3.0);
        assert_eq!(s.apply(Coord::new(1.0, 2.0)), Coord::new(2.0, 6.0));
    }

    #[test]
    fn quarter_rotations_are_exact() {
        let r = AffineMatrix::rotation_quarter(1);
        assert_eq!(r.apply(Coord::new(1.0, 0.0)), Coord::new(0.0, 1.0));
        let r2 = AffineMatrix::rotation_quarter(2);
        assert_eq!(r2.apply(Coord::new(1.0, 2.0)), Coord::new(-1.0, -2.0));
        assert_eq!(AffineMatrix::rotation_quarter(4), AffineMatrix::identity());
        assert_eq!(
            AffineMatrix::rotation_quarter(-1),
            AffineMatrix::rotation_quarter(3)
        );
    }

    #[test]
    fn swap_xy_matches_listing4() {
        let t = AffineMatrix::swap_xy();
        assert_eq!(t.apply(Coord::new(614.0, 445.0)), Coord::new(445.0, 614.0));
        assert_eq!(t.determinant(), -1.0);
        assert!(t.is_invertible());
    }

    #[test]
    fn determinant_and_invertibility() {
        let singular = AffineMatrix::new(1.0, 2.0, 2.0, 4.0, 0.0, 0.0);
        assert_eq!(singular.determinant(), 0.0);
        assert!(!singular.is_invertible());
        assert!(AffineTransform::new(singular).is_err());
        assert!(matches!(singular.inverse(), Err(GeomError::SingularMatrix)));
    }

    #[test]
    fn inverse_round_trips_coordinates() {
        let m = AffineMatrix::new(2.0, 1.0, 0.0, 1.0, 5.0, -3.0);
        let t = AffineTransform::new(m).unwrap();
        let inv = t.inverse();
        let p = Coord::new(7.0, 11.0);
        let q = t.apply_coord(p);
        let back = inv.apply_coord(q);
        assert!((back.x - p.x).abs() < 1e-12);
        assert!((back.y - p.y).abs() < 1e-12);
    }

    #[test]
    fn composition_applies_right_then_left() {
        let scale = AffineMatrix::scaling(2.0, 2.0);
        let translate = AffineMatrix::translation(1.0, 0.0);
        // translate then scale
        let m = scale.compose(&translate);
        assert_eq!(m.apply(Coord::new(0.0, 0.0)), Coord::new(2.0, 0.0));
        // scale then translate
        let m2 = translate.compose(&scale);
        assert_eq!(m2.apply(Coord::new(0.0, 0.0)), Coord::new(1.0, 0.0));
    }

    #[test]
    fn apply_to_geometry_preserves_structure() {
        let g = parse_wkt(
            "GEOMETRYCOLLECTION(POINT(1 1),LINESTRING(0 0,1 0),POLYGON((0 0,2 0,2 2,0 0)))",
        )
        .unwrap();
        let t = AffineTransform::new(AffineMatrix::translation(100.0, 200.0)).unwrap();
        let out = t.apply(&g);
        assert_eq!(out.geometry_type(), g.geometry_type());
        assert_eq!(out.num_coords(), g.num_coords());
        assert_eq!(
            out.geometry_n(1),
            Some(Geometry::Point(Point::new(101.0, 201.0)))
        );
    }

    #[test]
    fn empty_geometries_stay_empty_under_transform() {
        let g = parse_wkt("MULTIPOINT((-2 0),EMPTY)").unwrap();
        let t = AffineTransform::new(AffineMatrix::scaling(3.0, 3.0)).unwrap();
        let out = t.apply(&g);
        match out {
            Geometry::MultiPoint(mp) => {
                assert_eq!(mp.points[0], Point::new(-6.0, 0.0));
                assert!(mp.points[1].is_empty());
            }
            _ => panic!("type changed"),
        }
    }

    #[test]
    fn integer_matrix_detection() {
        assert!(AffineMatrix::new(2.0, -1.0, 3.0, 4.0, 10.0, -7.0).is_integer());
        assert!(!AffineMatrix::new(0.5, 0.0, 0.0, 1.0, 0.0, 0.0).is_integer());
    }

    #[test]
    fn relative_distance_preservation_classification() {
        assert!(AffineMatrix::rotation_quarter(1).preserves_relative_distance());
        assert!(AffineMatrix::scaling(3.0, 3.0).preserves_relative_distance());
        assert!(AffineMatrix::translation(5.0, 6.0).preserves_relative_distance());
        assert!(!AffineMatrix::shearing(0.5, 0.0).preserves_relative_distance());
        assert!(!AffineMatrix::scaling(1.0, 2.0).preserves_relative_distance());
    }

    #[test]
    fn rotation_by_radians_is_close_to_exact() {
        let r = AffineMatrix::rotation(std::f64::consts::FRAC_PI_2);
        let p = r.apply(Coord::new(1.0, 0.0));
        assert!((p.x - 0.0).abs() < 1e-12);
        assert!((p.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shear_preserves_line_membership() {
        // Affine transforms preserve collinearity: the midpoint of a segment
        // maps to the midpoint of the mapped segment.
        let m = AffineMatrix::shearing(1.0, 0.0);
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(2.0, 2.0);
        let mid = a.midpoint(&b);
        let (ma, mb, mmid) = (m.apply(a), m.apply(b), m.apply(mid));
        assert_eq!(ma.midpoint(&mb), mmid);
        let _ = LineString::new(vec![ma, mb]);
    }
}
