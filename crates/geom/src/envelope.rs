//! Axis-aligned bounding boxes.
//!
//! Envelopes are what the GiST-analog R-tree index (`spatter-index`) stores
//! and what the engine's index scans filter on; the `~=` / bounding-box
//! operators of Listing 8 are evaluated on envelopes.

use crate::coord::Coord;

/// An axis-aligned rectangle, possibly empty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
    empty: bool,
}

impl Default for Envelope {
    fn default() -> Self {
        Envelope::empty()
    }
}

impl Envelope {
    /// The empty envelope (bounding box of an EMPTY geometry).
    pub fn empty() -> Self {
        Envelope {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
            empty: true,
        }
    }

    /// Envelope of a single coordinate (a degenerate rectangle).
    pub fn from_coord(c: Coord) -> Self {
        Envelope {
            min_x: c.x,
            min_y: c.y,
            max_x: c.x,
            max_y: c.y,
            empty: false,
        }
    }

    /// Envelope covering all of the given coordinates.
    pub fn from_coords(coords: impl IntoIterator<Item = Coord>) -> Self {
        let mut env = Envelope::empty();
        for c in coords {
            env.expand_coord(c);
        }
        env
    }

    /// Builds an envelope from explicit bounds. `min` components must not
    /// exceed `max` components.
    pub fn from_bounds(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x && min_y <= max_y);
        Envelope {
            min_x,
            min_y,
            max_x,
            max_y,
            empty: false,
        }
    }

    /// Whether this envelope is the empty envelope.
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// Minimum X, meaningful only when non-empty.
    pub fn min_x(&self) -> f64 {
        self.min_x
    }

    /// Minimum Y, meaningful only when non-empty.
    pub fn min_y(&self) -> f64 {
        self.min_y
    }

    /// Maximum X, meaningful only when non-empty.
    pub fn max_x(&self) -> f64 {
        self.max_x
    }

    /// Maximum Y, meaningful only when non-empty.
    pub fn max_y(&self) -> f64 {
        self.max_y
    }

    /// Width (0 for empty envelopes).
    pub fn width(&self) -> f64 {
        if self.empty {
            0.0
        } else {
            self.max_x - self.min_x
        }
    }

    /// Height (0 for empty envelopes).
    pub fn height(&self) -> f64 {
        if self.empty {
            0.0
        } else {
            self.max_y - self.min_y
        }
    }

    /// Area of the rectangle.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half perimeter, the R*-tree "margin" metric.
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Grows the envelope to include a coordinate.
    pub fn expand_coord(&mut self, c: Coord) {
        if self.empty {
            *self = Envelope::from_coord(c);
        } else {
            self.min_x = self.min_x.min(c.x);
            self.min_y = self.min_y.min(c.y);
            self.max_x = self.max_x.max(c.x);
            self.max_y = self.max_y.max(c.y);
        }
    }

    /// Grows the envelope to include another envelope.
    pub fn expand_envelope(&mut self, other: &Envelope) {
        if other.empty {
            return;
        }
        if self.empty {
            *self = *other;
        } else {
            self.min_x = self.min_x.min(other.min_x);
            self.min_y = self.min_y.min(other.min_y);
            self.max_x = self.max_x.max(other.max_x);
            self.max_y = self.max_y.max(other.max_y);
        }
    }

    /// The union of two envelopes.
    pub fn union(&self, other: &Envelope) -> Envelope {
        let mut env = *self;
        env.expand_envelope(other);
        env
    }

    /// Whether the two envelopes intersect (empty envelopes intersect nothing).
    pub fn intersects(&self, other: &Envelope) -> bool {
        if self.empty || other.empty {
            return false;
        }
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Whether this envelope fully contains the other (empty envelopes
    /// contain nothing and are contained by nothing).
    pub fn contains_envelope(&self, other: &Envelope) -> bool {
        if self.empty || other.empty {
            return false;
        }
        self.min_x <= other.min_x
            && self.min_y <= other.min_y
            && self.max_x >= other.max_x
            && self.max_y >= other.max_y
    }

    /// Whether this envelope contains a coordinate (boundary inclusive).
    pub fn contains_coord(&self, c: Coord) -> bool {
        !self.empty
            && c.x >= self.min_x
            && c.x <= self.max_x
            && c.y >= self.min_y
            && c.y <= self.max_y
    }

    /// Whether the two envelopes are identical. Two empty envelopes are equal.
    pub fn same_box(&self, other: &Envelope) -> bool {
        if self.empty && other.empty {
            return true;
        }
        if self.empty != other.empty {
            return false;
        }
        self.min_x == other.min_x
            && self.min_y == other.min_y
            && self.max_x == other.max_x
            && self.max_y == other.max_y
    }

    /// Area of the overlap between the two envelopes.
    pub fn intersection_area(&self, other: &Envelope) -> f64 {
        if !self.intersects(other) {
            return 0.0;
        }
        let w = (self.max_x.min(other.max_x) - self.min_x.max(other.min_x)).max(0.0);
        let h = (self.max_y.min(other.max_y) - self.min_y.max(other.min_y)).max(0.0);
        w * h
    }

    /// Minimum distance between the two rectangles (0 when they intersect).
    pub fn distance(&self, other: &Envelope) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared minimum distance between the two rectangles: the sqrt-free
    /// kernel behind [`Envelope::distance`], usable as an exact lower bound
    /// on the squared distance between any geometries the boxes bound.
    /// Infinite when either envelope is empty.
    pub fn distance_sq(&self, other: &Envelope) -> f64 {
        if self.empty || other.empty {
            return f64::INFINITY;
        }
        let dx = (other.min_x - self.max_x)
            .max(self.min_x - other.max_x)
            .max(0.0);
        let dy = (other.min_y - self.max_y)
            .max(self.min_y - other.max_y)
            .max(0.0);
        dx * dx + dy * dy
    }

    /// Squared maximum corner-to-corner separation of the two rectangles: an
    /// upper bound on the squared distance between any point bounded by one
    /// envelope and any point bounded by the other. Infinite when either
    /// envelope is empty (no bound exists for nothing).
    pub fn max_distance_sq(&self, other: &Envelope) -> f64 {
        if self.empty || other.empty {
            return f64::INFINITY;
        }
        let dx = (other.max_x - self.min_x).max(self.max_x - other.min_x);
        let dy = (other.max_y - self.min_y).max(self.max_y - other.min_y);
        dx * dx + dy * dy
    }

    /// The center of the rectangle.
    pub fn center(&self) -> Option<Coord> {
        if self.empty {
            None
        } else {
            Some(Coord::new(
                (self.min_x + self.max_x) / 2.0,
                (self.min_y + self.max_y) / 2.0,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_envelope_properties() {
        let e = Envelope::empty();
        assert!(e.is_empty());
        assert_eq!(e.width(), 0.0);
        assert_eq!(e.area(), 0.0);
        assert!(e.center().is_none());
        assert!(!e.intersects(&Envelope::from_coord(Coord::zero())));
    }

    #[test]
    fn expansion() {
        let mut e = Envelope::empty();
        e.expand_coord(Coord::new(1.0, 2.0));
        e.expand_coord(Coord::new(-1.0, 5.0));
        assert_eq!(e.min_x(), -1.0);
        assert_eq!(e.max_x(), 1.0);
        assert_eq!(e.min_y(), 2.0);
        assert_eq!(e.max_y(), 5.0);
        assert_eq!(e.width(), 2.0);
        assert_eq!(e.height(), 3.0);
        assert_eq!(e.area(), 6.0);
        assert_eq!(e.margin(), 5.0);
    }

    #[test]
    fn intersects_and_contains() {
        let a = Envelope::from_bounds(0.0, 0.0, 10.0, 10.0);
        let b = Envelope::from_bounds(5.0, 5.0, 15.0, 15.0);
        let c = Envelope::from_bounds(11.0, 11.0, 12.0, 12.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.contains_envelope(&Envelope::from_bounds(1.0, 1.0, 2.0, 2.0)));
        assert!(!a.contains_envelope(&b));
        assert!(a.contains_coord(Coord::new(10.0, 10.0)));
        assert!(!a.contains_coord(Coord::new(10.1, 10.0)));
    }

    #[test]
    fn union_and_intersection_area() {
        let a = Envelope::from_bounds(0.0, 0.0, 4.0, 4.0);
        let b = Envelope::from_bounds(2.0, 2.0, 6.0, 6.0);
        let u = a.union(&b);
        assert_eq!(u.min_x(), 0.0);
        assert_eq!(u.max_x(), 6.0);
        assert_eq!(a.intersection_area(&b), 4.0);
        assert_eq!(
            a.intersection_area(&Envelope::from_bounds(10.0, 10.0, 11.0, 11.0)),
            0.0
        );
    }

    #[test]
    fn distance_between_boxes() {
        let a = Envelope::from_bounds(0.0, 0.0, 1.0, 1.0);
        let b = Envelope::from_bounds(4.0, 5.0, 6.0, 7.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance(&a), 0.0);
        assert_eq!(a.distance_sq(&b), 25.0);
        assert_eq!(a.distance_sq(&a), 0.0);
        assert_eq!(a.distance(&Envelope::empty()), f64::INFINITY);
        assert_eq!(Envelope::empty().distance_sq(&a), f64::INFINITY);
    }

    #[test]
    fn max_distance_sq_bounds_every_point_pair() {
        let a = Envelope::from_bounds(0.0, 0.0, 1.0, 1.0);
        let b = Envelope::from_bounds(4.0, 5.0, 6.0, 7.0);
        // Farthest corners: (0,0) to (6,7).
        assert_eq!(a.max_distance_sq(&b), 36.0 + 49.0);
        assert_eq!(b.max_distance_sq(&a), 36.0 + 49.0);
        // A box against itself: the diagonal.
        assert_eq!(a.max_distance_sq(&a), 2.0);
        // Nested boxes: the farthest pair straddles the outer box.
        let outer = Envelope::from_bounds(-10.0, -10.0, 10.0, 10.0);
        let inner = Envelope::from_bounds(-1.0, -1.0, 1.0, 1.0);
        assert_eq!(outer.max_distance_sq(&inner), 121.0 + 121.0);
        assert_eq!(outer.max_distance_sq(&Envelope::empty()), f64::INFINITY);
        // The lower bound never exceeds the upper bound.
        assert!(a.distance_sq(&b) <= a.max_distance_sq(&b));
    }

    #[test]
    fn same_box_semantics() {
        let a = Envelope::from_bounds(0.0, 0.0, 1.0, 1.0);
        assert!(a.same_box(&a));
        assert!(Envelope::empty().same_box(&Envelope::empty()));
        assert!(!a.same_box(&Envelope::empty()));
    }

    #[test]
    fn center_of_box() {
        let a = Envelope::from_bounds(0.0, 0.0, 4.0, 2.0);
        assert_eq!(a.center(), Some(Coord::new(2.0, 1.0)));
    }
}
