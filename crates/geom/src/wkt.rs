//! Well-Known Text reading and writing.
//!
//! The paper's generator and the SQL engine exchange geometries exclusively
//! as WKT literals (`'LINESTRING(0 1,2 0)'`, Listings 1–9), so the parser
//! accepts the full 2D OGC grammar including EMPTY at every nesting level and
//! both the `MULTIPOINT(0 0, 1 1)` and `MULTIPOINT((0 0),(1 1))` spellings.

use crate::coord::{fmt_f64, Coord};
use crate::error::{GeomError, GeomResult};
use crate::geometry::Geometry;
use crate::types::{
    GeometryCollection, LineString, MultiLineString, MultiPoint, MultiPolygon, Point, Polygon,
};

/// Parses a WKT string into a [`Geometry`].
pub fn parse_wkt(input: &str) -> GeomResult<Geometry> {
    let mut parser = Parser::new(input);
    let geom = parser.parse_geometry()?;
    parser.skip_ws();
    if parser.pos < parser.bytes.len() {
        return Err(parser.error("unexpected trailing input"));
    }
    Ok(geom)
}

/// Serializes a [`Geometry`] to WKT.
pub fn write_wkt(geometry: &Geometry) -> String {
    let mut out = String::new();
    write_geometry(geometry, &mut out);
    out
}

fn write_geometry(geometry: &Geometry, out: &mut String) {
    match geometry {
        Geometry::Point(p) => {
            out.push_str("POINT");
            match &p.coord {
                None => out.push_str(" EMPTY"),
                Some(c) => {
                    out.push('(');
                    write_coord(c, out);
                    out.push(')');
                }
            }
        }
        Geometry::LineString(l) => {
            out.push_str("LINESTRING");
            write_coord_seq(&l.coords, out);
        }
        Geometry::Polygon(p) => {
            out.push_str("POLYGON");
            write_rings(&p.rings, out);
        }
        Geometry::MultiPoint(m) => {
            out.push_str("MULTIPOINT");
            if m.points.is_empty() {
                out.push_str(" EMPTY");
            } else {
                out.push('(');
                for (i, p) in m.points.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    match &p.coord {
                        None => out.push_str("EMPTY"),
                        Some(c) => {
                            out.push('(');
                            write_coord(c, out);
                            out.push(')');
                        }
                    }
                }
                out.push(')');
            }
        }
        Geometry::MultiLineString(m) => {
            out.push_str("MULTILINESTRING");
            if m.lines.is_empty() {
                out.push_str(" EMPTY");
            } else {
                out.push('(');
                for (i, l) in m.lines.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if l.is_empty() {
                        out.push_str("EMPTY");
                    } else {
                        write_coord_seq(&l.coords, out);
                    }
                }
                out.push(')');
            }
        }
        Geometry::MultiPolygon(m) => {
            out.push_str("MULTIPOLYGON");
            if m.polygons.is_empty() {
                out.push_str(" EMPTY");
            } else {
                out.push('(');
                for (i, p) in m.polygons.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if p.rings.is_empty() {
                        out.push_str("EMPTY");
                    } else {
                        write_rings(&p.rings, out);
                    }
                }
                out.push(')');
            }
        }
        Geometry::GeometryCollection(c) => {
            out.push_str("GEOMETRYCOLLECTION");
            if c.geometries.is_empty() {
                out.push_str(" EMPTY");
            } else {
                out.push('(');
                for (i, g) in c.geometries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_geometry(g, out);
                }
                out.push(')');
            }
        }
    }
}

fn write_coord(c: &Coord, out: &mut String) {
    out.push_str(&fmt_f64(c.x));
    out.push(' ');
    out.push_str(&fmt_f64(c.y));
}

fn write_coord_seq(coords: &[Coord], out: &mut String) {
    if coords.is_empty() {
        out.push_str(" EMPTY");
        return;
    }
    out.push('(');
    for (i, c) in coords.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_coord(c, out);
    }
    out.push(')');
}

fn write_rings(rings: &[LineString], out: &mut String) {
    if rings.is_empty() {
        out.push_str(" EMPTY");
        return;
    }
    out.push('(');
    for (i, r) in rings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_coord_seq(&r.coords, out);
    }
    out.push(')');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> GeomError {
        GeomError::WktParse {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> GeomResult<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn consume_if(&mut self, byte: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn read_word(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_alphabetic() {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).to_uppercase()
    }

    fn peek_word(&mut self) -> String {
        let saved = self.pos;
        let word = self.read_word();
        self.pos = saved;
        word
    }

    fn read_number(&mut self) -> GeomResult<f64> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_digit() || b == b'-' || b == b'+' || b == b'.' || b == b'e' || b == b'E' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.error("expected number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|v| v.is_finite())
            .ok_or_else(|| self.error("invalid number"))
    }

    /// Consumes an optional dimensionality qualifier (`Z`, `M`, `ZM`); only
    /// 2D coordinates are supported, so `Z`/`M` values are rejected later by
    /// coordinate arity checks. The qualifier itself is tolerated because
    /// real engines print it.
    fn skip_dim_qualifier(&mut self) {
        let word = self.peek_word();
        if word == "Z" || word == "M" || word == "ZM" {
            self.read_word();
        }
    }

    fn parse_geometry(&mut self) -> GeomResult<Geometry> {
        let tag = self.read_word();
        if tag.is_empty() {
            return Err(self.error("expected geometry type keyword"));
        }
        self.skip_dim_qualifier();
        match tag.as_str() {
            "POINT" => self.parse_point().map(Geometry::Point),
            "LINESTRING" => self.parse_linestring().map(Geometry::LineString),
            "POLYGON" => self.parse_polygon().map(Geometry::Polygon),
            "MULTIPOINT" => self.parse_multipoint().map(Geometry::MultiPoint),
            "MULTILINESTRING" => self.parse_multilinestring().map(Geometry::MultiLineString),
            "MULTIPOLYGON" => self.parse_multipolygon().map(Geometry::MultiPolygon),
            "GEOMETRYCOLLECTION" => self.parse_collection().map(Geometry::GeometryCollection),
            other => Err(self.error(&format!("unknown geometry type '{other}'"))),
        }
    }

    fn try_empty(&mut self) -> bool {
        if self.peek_word() == "EMPTY" {
            self.read_word();
            true
        } else {
            false
        }
    }

    fn parse_coord(&mut self) -> GeomResult<Coord> {
        let x = self.read_number()?;
        let y = self.read_number()?;
        // Reject a third ordinate explicitly so a Z value is a parse error
        // rather than being silently mis-read as the next coordinate.
        self.skip_ws();
        if let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || *b == b'-' || *b == b'+' || *b == b'.' {
                return Err(self.error("only 2D coordinates are supported"));
            }
        }
        Ok(Coord::new(x, y))
    }

    fn parse_coord_seq(&mut self) -> GeomResult<Vec<Coord>> {
        self.expect(b'(')?;
        let mut coords = Vec::new();
        loop {
            coords.push(self.parse_coord()?);
            if !self.consume_if(b',') {
                break;
            }
        }
        self.expect(b')')?;
        Ok(coords)
    }

    fn parse_point(&mut self) -> GeomResult<Point> {
        if self.try_empty() {
            return Ok(Point::empty());
        }
        self.expect(b'(')?;
        let c = self.parse_coord()?;
        self.expect(b')')?;
        Ok(Point::from_coord(c))
    }

    fn parse_linestring(&mut self) -> GeomResult<LineString> {
        if self.try_empty() {
            return Ok(LineString::empty());
        }
        Ok(LineString::new(self.parse_coord_seq()?))
    }

    fn parse_polygon(&mut self) -> GeomResult<Polygon> {
        if self.try_empty() {
            return Ok(Polygon::empty());
        }
        self.expect(b'(')?;
        let mut rings = Vec::new();
        loop {
            if self.try_empty() {
                rings.push(LineString::empty());
            } else {
                rings.push(LineString::new(self.parse_coord_seq()?));
            }
            if !self.consume_if(b',') {
                break;
            }
        }
        self.expect(b')')?;
        Ok(Polygon::new(rings))
    }

    fn parse_multipoint(&mut self) -> GeomResult<MultiPoint> {
        if self.try_empty() {
            return Ok(MultiPoint::empty());
        }
        self.expect(b'(')?;
        let mut points = Vec::new();
        loop {
            if self.try_empty() {
                points.push(Point::empty());
            } else if self.peek() == Some(b'(') {
                self.expect(b'(')?;
                let c = self.parse_coord()?;
                self.expect(b')')?;
                points.push(Point::from_coord(c));
            } else {
                points.push(Point::from_coord(self.parse_coord()?));
            }
            if !self.consume_if(b',') {
                break;
            }
        }
        self.expect(b')')?;
        Ok(MultiPoint::new(points))
    }

    fn parse_multilinestring(&mut self) -> GeomResult<MultiLineString> {
        if self.try_empty() {
            return Ok(MultiLineString::empty());
        }
        self.expect(b'(')?;
        let mut lines = Vec::new();
        loop {
            if self.try_empty() {
                lines.push(LineString::empty());
            } else {
                lines.push(LineString::new(self.parse_coord_seq()?));
            }
            if !self.consume_if(b',') {
                break;
            }
        }
        self.expect(b')')?;
        Ok(MultiLineString::new(lines))
    }

    fn parse_multipolygon(&mut self) -> GeomResult<MultiPolygon> {
        if self.try_empty() {
            return Ok(MultiPolygon::empty());
        }
        self.expect(b'(')?;
        let mut polygons = Vec::new();
        loop {
            if self.try_empty() {
                polygons.push(Polygon::empty());
            } else {
                self.expect(b'(')?;
                let mut rings = Vec::new();
                loop {
                    rings.push(LineString::new(self.parse_coord_seq()?));
                    if !self.consume_if(b',') {
                        break;
                    }
                }
                self.expect(b')')?;
                polygons.push(Polygon::new(rings));
            }
            if !self.consume_if(b',') {
                break;
            }
        }
        self.expect(b')')?;
        Ok(MultiPolygon::new(polygons))
    }

    fn parse_collection(&mut self) -> GeomResult<GeometryCollection> {
        if self.try_empty() {
            return Ok(GeometryCollection::empty());
        }
        self.expect(b'(')?;
        let mut geometries = Vec::new();
        loop {
            geometries.push(self.parse_geometry()?);
            if !self.consume_if(b',') {
                break;
            }
        }
        self.expect(b')')?;
        Ok(GeometryCollection::new(geometries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::GeometryType;

    fn round_trip(wkt: &str) -> String {
        write_wkt(&parse_wkt(wkt).expect("parse"))
    }

    #[test]
    fn parse_point() {
        let g = parse_wkt("POINT(0.2 0.9)").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(0.2, 0.9)));
        assert_eq!(round_trip("POINT(0.2 0.9)"), "POINT(0.2 0.9)");
    }

    #[test]
    fn parse_point_empty() {
        assert_eq!(
            parse_wkt("POINT EMPTY").unwrap(),
            Geometry::Point(Point::empty())
        );
        assert_eq!(round_trip("POINT EMPTY"), "POINT EMPTY");
    }

    #[test]
    fn parse_linestring_listing1() {
        let g = parse_wkt("LINESTRING(0 1,2 0)").unwrap();
        assert_eq!(g.num_coords(), 2);
        assert_eq!(round_trip("LINESTRING(0 1,2 0)"), "LINESTRING(0 1,2 0)");
    }

    #[test]
    fn parse_polygon_with_hole() {
        let g = parse_wkt("POLYGON((0 0,10 0,10 10,0 10,0 0),(2 2,4 2,4 4,2 4,2 2))").unwrap();
        match &g {
            Geometry::Polygon(p) => {
                assert_eq!(p.rings.len(), 2);
                assert_eq!(p.interiors().len(), 1);
            }
            _ => panic!("expected polygon"),
        }
    }

    #[test]
    fn parse_multipoint_both_spellings() {
        let a = parse_wkt("MULTIPOINT((1 0),(0 0))").unwrap();
        let b = parse_wkt("MULTIPOINT(1 0,0 0)").unwrap();
        assert_eq!(a, b);
        assert_eq!(write_wkt(&a), "MULTIPOINT((1 0),(0 0))");
    }

    #[test]
    fn parse_multipoint_with_empty_element_listing5() {
        let g = parse_wkt("MULTIPOINT((-2 0),EMPTY)").unwrap();
        match &g {
            Geometry::MultiPoint(mp) => {
                assert_eq!(mp.points.len(), 2);
                assert!(mp.points[1].is_empty());
            }
            _ => panic!("expected multipoint"),
        }
        assert_eq!(
            round_trip("MULTIPOINT((-2 0),EMPTY)"),
            "MULTIPOINT((-2 0),EMPTY)"
        );
    }

    #[test]
    fn parse_multilinestring_with_empty_fig6() {
        let g = parse_wkt("MULTILINESTRING((0 2,1 0,3 1,3 1,5 0),EMPTY)").unwrap();
        match &g {
            Geometry::MultiLineString(ml) => {
                assert_eq!(ml.lines.len(), 2);
                assert!(ml.lines[1].is_empty());
                assert_eq!(ml.lines[0].coords.len(), 5);
            }
            _ => panic!("expected multilinestring"),
        }
    }

    #[test]
    fn parse_geometrycollection_listing6() {
        let g = parse_wkt("GEOMETRYCOLLECTION(POINT(0 0),LINESTRING(0 0,1 0))").unwrap();
        assert_eq!(g.geometry_type(), GeometryType::GeometryCollection);
        assert_eq!(g.num_geometries(), 2);
        assert_eq!(
            round_trip("GEOMETRYCOLLECTION(POINT(0 0),LINESTRING(0 0,1 0))"),
            "GEOMETRYCOLLECTION(POINT(0 0),LINESTRING(0 0,1 0))"
        );
    }

    #[test]
    fn parse_nested_collection() {
        let g = parse_wkt("GEOMETRYCOLLECTION(MULTIPOINT((0 0),(3 1)))").unwrap();
        assert_eq!(g.num_geometries(), 1);
        assert_eq!(g.flatten().len(), 2);
    }

    #[test]
    fn parse_multipolygon() {
        let g = parse_wkt("MULTIPOLYGON(((0 0,5 0,0 5,0 0)))").unwrap();
        match &g {
            Geometry::MultiPolygon(mp) => assert_eq!(mp.polygons.len(), 1),
            _ => panic!("expected multipolygon"),
        }
        assert_eq!(
            round_trip("MULTIPOLYGON(((0 0,5 0,0 5,0 0)))"),
            "MULTIPOLYGON(((0 0,5 0,0 5,0 0)))"
        );
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_wkt("").is_err());
        assert!(parse_wkt("CIRCLE(0 0, 5)").is_err());
        assert!(parse_wkt("POINT(1)").is_err());
        assert!(parse_wkt("POINT(1 2 3)").is_err());
        assert!(parse_wkt("LINESTRING(0 0,1 1) garbage").is_err());
        assert!(parse_wkt("POLYGON((0 0,1 1,").is_err());
        assert!(parse_wkt("POINT(a b)").is_err());
    }

    #[test]
    fn case_insensitive_and_whitespace_tolerant() {
        let g = parse_wkt("  point ( 1   2 ) ").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(1.0, 2.0)));
        let g = parse_wkt("LineString ( 0 0 , 1 1 )").unwrap();
        assert_eq!(g.num_coords(), 2);
    }

    #[test]
    fn scientific_notation_and_negatives() {
        let g = parse_wkt("POINT(-1.5e2 +0.25)").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(-150.0, 0.25)));
    }

    #[test]
    fn empty_collections_round_trip() {
        for wkt in [
            "MULTIPOINT EMPTY",
            "MULTILINESTRING EMPTY",
            "MULTIPOLYGON EMPTY",
            "GEOMETRYCOLLECTION EMPTY",
            "LINESTRING EMPTY",
            "POLYGON EMPTY",
        ] {
            assert_eq!(round_trip(wkt), wkt, "round trip of {wkt}");
            assert!(parse_wkt(wkt).unwrap().is_empty());
        }
    }
}
