//! # spatter-geom
//!
//! Geometry model for the Spatter / Affine Equivalent Inputs reproduction.
//!
//! This crate plays the role of the data-model half of the shared geometry
//! library (the "GEOS analog") that the spatial SQL engine and the tester both
//! build on. It provides:
//!
//! * the seven OGC 2D geometry types of the paper's §2.1 (Figure 2), including
//!   EMPTY geometries at every level ([`Geometry`], [`Point`], [`LineString`],
//!   [`Polygon`], [`MultiPoint`], [`MultiLineString`], [`MultiPolygon`],
//!   [`GeometryCollection`]);
//! * Well-Known Text parsing and writing ([`wkt`]);
//! * affine transformations in homogeneous coordinates (§2.3, Algorithm 2)
//!   including the integer-matrix generation strategy the paper uses to avoid
//!   precision false alarms ([`affine`]);
//! * canonicalization at the element and value level (§4.3, Figure 6)
//!   ([`canonical`]);
//! * envelopes, dimension computation, ring orientation and validity checks.
//!
//! The topological relate engine (DE-9IM) lives in the sibling crate
//! `spatter-topo`.

pub mod affine;
pub mod canonical;
pub mod coord;
pub mod dimension;
pub mod envelope;
pub mod error;
pub mod geometry;
pub mod orientation;
pub mod types;
pub mod validity;
pub mod wkt;

pub use affine::{AffineMatrix, AffineTransform};
pub use coord::Coord;
pub use dimension::Dimension;
pub use envelope::Envelope;
pub use error::GeomError;
pub use geometry::{Geometry, GeometryType};
pub use orientation::{ring_orientation, signed_area, RingOrientation};
pub use types::{
    GeometryCollection, LineString, MultiLineString, MultiPoint, MultiPolygon, Point, Polygon,
};
