//! Error types for geometry construction, parsing and transformation.

use std::fmt;

/// Errors produced by the geometry layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeomError {
    /// The WKT input could not be tokenized or parsed.
    WktParse {
        /// Human readable description of the failure.
        message: String,
        /// Byte offset in the input at which the failure was observed.
        position: usize,
    },
    /// A geometry violates a structural constraint (e.g. a ring with fewer
    /// than four points, or an unclosed ring).
    InvalidGeometry(String),
    /// An affine matrix is singular and therefore not a valid affine
    /// transformation (the paper requires invertible matrices, §2.3).
    SingularMatrix,
    /// An operation received a geometry type it does not support.
    UnsupportedType {
        /// Name of the operation.
        operation: &'static str,
        /// Name of the offending geometry type.
        geometry_type: &'static str,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::WktParse { message, position } => {
                write!(f, "WKT parse error at byte {position}: {message}")
            }
            GeomError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            GeomError::SingularMatrix => write!(f, "affine matrix is singular"),
            GeomError::UnsupportedType {
                operation,
                geometry_type,
            } => write!(f, "{operation} does not support {geometry_type}"),
        }
    }
}

impl std::error::Error for GeomError {}

/// Convenience alias used throughout the geometry crates.
pub type GeomResult<T> = Result<T, GeomError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_wkt_parse() {
        let err = GeomError::WktParse {
            message: "expected number".into(),
            position: 7,
        };
        assert_eq!(
            err.to_string(),
            "WKT parse error at byte 7: expected number"
        );
    }

    #[test]
    fn display_singular() {
        assert_eq!(
            GeomError::SingularMatrix.to_string(),
            "affine matrix is singular"
        );
    }

    #[test]
    fn display_unsupported() {
        let err = GeomError::UnsupportedType {
            operation: "DumpRings",
            geometry_type: "POINT",
        };
        assert_eq!(err.to_string(), "DumpRings does not support POINT");
    }

    #[test]
    fn display_invalid() {
        let err = GeomError::InvalidGeometry("ring not closed".into());
        assert_eq!(err.to_string(), "invalid geometry: ring not closed");
    }
}
