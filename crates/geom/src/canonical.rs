//! Canonicalization (§4.3 of the paper, Figure 6).
//!
//! Canonicalization rewrites a geometry's *representation* without changing
//! the point set it denotes. The paper treats it as the special case of AEI
//! construction with the identity matrix `E`: passing the original and the
//! canonicalized databases to the same query must return identical results.
//!
//! Two levels are implemented, matching §4.3:
//!
//! * **element level** (MULTI and MIXED geometries only): EMPTY removal,
//!   homogenization (a single-element MULTI becomes its basic type, nested
//!   collections are flattened), duplicate-element removal, and reordering by
//!   dimension;
//! * **value level** (each basic element): consecutive-duplicate vertex
//!   removal and direction reordering (linestrings get a canonical direction,
//!   polygon loops are forced clockwise).

use crate::coord::Coord;
use crate::geometry::{Geometry, GeometryType};
use crate::orientation::{ring_orientation, RingOrientation};
use crate::types::{
    GeometryCollection, LineString, MultiLineString, MultiPoint, MultiPolygon, Polygon,
};
use crate::wkt::write_wkt;

/// Which canonicalization steps to apply. The default applies all of them,
/// matching the paper's pipeline; individual steps can be disabled for the
/// ablation benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanonicalizeOptions {
    /// Element level: drop EMPTY elements of MULTI/MIXED geometries.
    pub empty_removal: bool,
    /// Element level: collapse single-element MULTIs and flatten nested
    /// collections.
    pub homogenization: bool,
    /// Element level: remove duplicate elements (same shape).
    pub duplicate_removal: bool,
    /// Element level: reorder elements by dimension.
    pub reordering: bool,
    /// Value level: drop consecutive duplicate vertices.
    pub consecutive_duplicate_removal: bool,
    /// Value level: canonical direction for linestrings and clockwise loops
    /// for polygons.
    pub direction_reordering: bool,
}

impl Default for CanonicalizeOptions {
    fn default() -> Self {
        CanonicalizeOptions {
            empty_removal: true,
            homogenization: true,
            duplicate_removal: true,
            reordering: true,
            consecutive_duplicate_removal: true,
            direction_reordering: true,
        }
    }
}

impl CanonicalizeOptions {
    /// All steps enabled (the paper's configuration).
    pub fn all() -> Self {
        Self::default()
    }

    /// Only the value-level steps.
    pub fn value_level_only() -> Self {
        CanonicalizeOptions {
            empty_removal: false,
            homogenization: false,
            duplicate_removal: false,
            reordering: false,
            consecutive_duplicate_removal: true,
            direction_reordering: true,
        }
    }

    /// Only the element-level steps.
    pub fn element_level_only() -> Self {
        CanonicalizeOptions {
            empty_removal: true,
            homogenization: true,
            duplicate_removal: true,
            reordering: true,
            consecutive_duplicate_removal: false,
            direction_reordering: false,
        }
    }
}

/// Canonicalizes a geometry with all steps enabled.
pub fn canonicalize(geometry: &Geometry) -> Geometry {
    canonicalize_with(geometry, CanonicalizeOptions::all())
}

/// Canonicalizes a geometry with a specific set of steps.
pub fn canonicalize_with(geometry: &Geometry, options: CanonicalizeOptions) -> Geometry {
    let element = element_level(geometry, options);
    value_level(&element, options)
}

// ---------------------------------------------------------------------------
// Element level
// ---------------------------------------------------------------------------

fn element_level(geometry: &Geometry, options: CanonicalizeOptions) -> Geometry {
    match geometry {
        Geometry::MultiPoint(_)
        | Geometry::MultiLineString(_)
        | Geometry::MultiPolygon(_)
        | Geometry::GeometryCollection(_) => {
            // Work on the flattened element list so nested collections are
            // homogenized into a uniform structure.
            let mut elements: Vec<Geometry> = if options.homogenization {
                geometry.flatten()
            } else {
                top_level_elements(geometry)
            };

            if options.empty_removal {
                elements.retain(|g| !g.is_empty());
            }

            if options.duplicate_removal {
                elements = dedup_by_shape(elements);
            }

            if options.reordering {
                // Stable sort by dimension so that equal-dimension elements
                // keep their relative order (the paper reorders "according to
                // their dimensions").
                elements.sort_by_key(|g| g.dimension());
            }

            rebuild_collection(geometry.geometry_type(), elements, options)
        }
        basic => basic.clone(),
    }
}

fn top_level_elements(geometry: &Geometry) -> Vec<Geometry> {
    match geometry {
        Geometry::MultiPoint(m) => m.points.iter().cloned().map(Geometry::Point).collect(),
        Geometry::MultiLineString(m) => m.lines.iter().cloned().map(Geometry::LineString).collect(),
        Geometry::MultiPolygon(m) => m.polygons.iter().cloned().map(Geometry::Polygon).collect(),
        Geometry::GeometryCollection(c) => c.geometries.clone(),
        basic => vec![basic.clone()],
    }
}

fn dedup_by_shape(elements: Vec<Geometry>) -> Vec<Geometry> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(elements.len());
    for g in elements {
        // Duplicates are identified by their shape (§4.3): compare the
        // value-level canonical WKT so that direction/duplicate-vertex
        // differences do not defeat the deduplication.
        let key = write_wkt(&value_level(&g, CanonicalizeOptions::all()));
        if seen.insert(key) {
            out.push(g);
        }
    }
    out
}

fn rebuild_collection(
    original_type: GeometryType,
    elements: Vec<Geometry>,
    options: CanonicalizeOptions,
) -> Geometry {
    if elements.is_empty() {
        // All elements were EMPTY (or the collection was empty): the
        // canonical form is the EMPTY geometry of the original type.
        return Geometry::empty_of(original_type);
    }

    if options.homogenization && elements.len() == 1 {
        // Homogenization: a MULTI geometry with a single element becomes the
        // basic-type geometry (Figure 6's second step).
        return elements.into_iter().next().expect("len checked");
    }

    // If every element is of the same basic type, the result is the
    // corresponding MULTI type; otherwise it is a GEOMETRYCOLLECTION.
    let first_type = elements[0].geometry_type();
    let uniform = elements.iter().all(|g| g.geometry_type() == first_type);
    if options.homogenization && uniform {
        match first_type {
            GeometryType::Point => {
                return Geometry::MultiPoint(MultiPoint::new(
                    elements
                        .into_iter()
                        .map(|g| match g {
                            Geometry::Point(p) => p,
                            _ => unreachable!("uniform point elements"),
                        })
                        .collect(),
                ))
            }
            GeometryType::LineString => {
                return Geometry::MultiLineString(MultiLineString::new(
                    elements
                        .into_iter()
                        .map(|g| match g {
                            Geometry::LineString(l) => l,
                            _ => unreachable!("uniform linestring elements"),
                        })
                        .collect(),
                ))
            }
            GeometryType::Polygon => {
                return Geometry::MultiPolygon(MultiPolygon::new(
                    elements
                        .into_iter()
                        .map(|g| match g {
                            Geometry::Polygon(p) => p,
                            _ => unreachable!("uniform polygon elements"),
                        })
                        .collect(),
                ))
            }
            _ => {}
        }
    }

    match original_type {
        GeometryType::MultiPoint => Geometry::MultiPoint(MultiPoint::new(
            elements
                .into_iter()
                .filter_map(|g| match g {
                    Geometry::Point(p) => Some(p),
                    _ => None,
                })
                .collect(),
        )),
        GeometryType::MultiLineString => Geometry::MultiLineString(MultiLineString::new(
            elements
                .into_iter()
                .filter_map(|g| match g {
                    Geometry::LineString(l) => Some(l),
                    _ => None,
                })
                .collect(),
        )),
        GeometryType::MultiPolygon => Geometry::MultiPolygon(MultiPolygon::new(
            elements
                .into_iter()
                .filter_map(|g| match g {
                    Geometry::Polygon(p) => Some(p),
                    _ => None,
                })
                .collect(),
        )),
        _ => Geometry::GeometryCollection(GeometryCollection::new(elements)),
    }
}

// ---------------------------------------------------------------------------
// Value level
// ---------------------------------------------------------------------------

fn value_level(geometry: &Geometry, options: CanonicalizeOptions) -> Geometry {
    match geometry {
        Geometry::Point(p) => Geometry::Point(p.clone()),
        Geometry::LineString(l) => Geometry::LineString(canonical_linestring(l, options)),
        Geometry::Polygon(p) => Geometry::Polygon(canonical_polygon(p, options)),
        Geometry::MultiPoint(m) => Geometry::MultiPoint(m.clone()),
        Geometry::MultiLineString(m) => Geometry::MultiLineString(MultiLineString::new(
            m.lines
                .iter()
                .map(|l| canonical_linestring(l, options))
                .collect(),
        )),
        Geometry::MultiPolygon(m) => Geometry::MultiPolygon(MultiPolygon::new(
            m.polygons
                .iter()
                .map(|p| canonical_polygon(p, options))
                .collect(),
        )),
        Geometry::GeometryCollection(c) => Geometry::GeometryCollection(GeometryCollection::new(
            c.geometries
                .iter()
                .map(|g| value_level(g, options))
                .collect(),
        )),
    }
}

fn remove_consecutive_duplicates(coords: &[Coord]) -> Vec<Coord> {
    let mut out: Vec<Coord> = Vec::with_capacity(coords.len());
    for c in coords {
        if out.last().map(|last| last.approx_eq(c)).unwrap_or(false) {
            continue;
        }
        out.push(*c);
    }
    out
}

fn canonical_linestring(line: &LineString, options: CanonicalizeOptions) -> LineString {
    let mut coords = if options.consecutive_duplicate_removal {
        remove_consecutive_duplicates(&line.coords)
    } else {
        line.coords.clone()
    };

    if options.direction_reordering && coords.len() >= 2 {
        let first = coords[0];
        let last = coords[coords.len() - 1];
        // Reverse when the endpoints are out of order (x-axis first, then
        // y-axis, §4.3). Closed rings compare equal and stay as-is.
        if first.lex_cmp(&last) == std::cmp::Ordering::Greater {
            coords.reverse();
        }
    }

    LineString::new(coords)
}

fn canonical_polygon(polygon: &Polygon, options: CanonicalizeOptions) -> Polygon {
    let rings = polygon
        .rings
        .iter()
        .map(|ring| {
            let mut coords = if options.consecutive_duplicate_removal {
                let mut deduped = remove_consecutive_duplicates(&ring.coords);
                // Re-close the ring if deduplication removed the closing
                // vertex duplicate of an already-closed ring.
                if let (Some(first), Some(last)) = (deduped.first().copied(), deduped.last()) {
                    if !first.approx_eq(last) && ring.is_closed() {
                        deduped.push(first);
                    }
                }
                deduped
            } else {
                ring.coords.clone()
            };

            if options.direction_reordering {
                let candidate = LineString::new(coords.clone());
                if ring_orientation(&candidate) == RingOrientation::CounterClockwise {
                    coords.reverse();
                }
            }
            LineString::new(coords)
        })
        .collect();
    Polygon::new(rings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wkt::parse_wkt;

    fn canon(wkt: &str) -> String {
        write_wkt(&canonicalize(&parse_wkt(wkt).unwrap()))
    }

    #[test]
    fn figure6_element_and_value_level_pipeline() {
        // The worked example of Figure 6: EMPTY removal, homogenization,
        // then consecutive-duplicate removal; reordering leaves it unchanged.
        assert_eq!(
            canon("MULTILINESTRING((0 2,1 0,3 1,3 1,5 0),EMPTY)"),
            "LINESTRING(0 2,1 0,3 1,5 0)"
        );
    }

    #[test]
    fn empty_removal_of_all_elements_yields_empty_geometry() {
        assert_eq!(canon("MULTIPOINT(EMPTY,EMPTY)"), "MULTIPOINT EMPTY");
        assert_eq!(
            canon("GEOMETRYCOLLECTION(POINT EMPTY)"),
            "GEOMETRYCOLLECTION EMPTY"
        );
    }

    #[test]
    fn homogenization_collapses_single_element_multi() {
        assert_eq!(canon("MULTIPOINT((3 4))"), "POINT(3 4)");
        assert_eq!(
            canon("MULTIPOLYGON(((0 0,0 1,1 0,0 0)))"),
            "POLYGON((0 0,0 1,1 0,0 0))"
        );
    }

    #[test]
    fn homogenization_flattens_nested_collections() {
        assert_eq!(
            canon("GEOMETRYCOLLECTION(MULTIPOINT((0 0),(3 1)))"),
            "MULTIPOINT((0 0),(3 1))"
        );
        assert_eq!(
            canon("GEOMETRYCOLLECTION(GEOMETRYCOLLECTION(POINT(1 1)),POINT(2 2))"),
            "MULTIPOINT((1 1),(2 2))"
        );
    }

    #[test]
    fn duplicate_elements_are_removed_by_shape() {
        assert_eq!(
            canon("MULTIPOINT((1 1),(1 1),(2 2))"),
            "MULTIPOINT((1 1),(2 2))"
        );
        // Same shape expressed with opposite direction still counts as a
        // duplicate because comparison happens on the canonical value form.
        assert_eq!(
            canon("MULTILINESTRING((0 0,1 1),(1 1,0 0))"),
            "LINESTRING(0 0,1 1)"
        );
    }

    #[test]
    fn elements_are_reordered_by_dimension() {
        // The polygon ring is also rewritten to clockwise orientation by the
        // value-level step, hence the reversed ring in the expectation.
        assert_eq!(
            canon("GEOMETRYCOLLECTION(POLYGON((0 0,1 0,1 1,0 0)),POINT(5 5))"),
            "GEOMETRYCOLLECTION(POINT(5 5),POLYGON((0 0,1 1,1 0,0 0)))"
        );
    }

    #[test]
    fn consecutive_duplicate_vertices_are_removed() {
        assert_eq!(
            canon("LINESTRING(0 2,1 0,3 1,3 1,5 0)"),
            "LINESTRING(0 2,1 0,3 1,5 0)"
        );
    }

    #[test]
    fn linestring_direction_is_canonical() {
        // Endpoints out of lexicographic order get reversed...
        assert_eq!(canon("LINESTRING(5 0,3 1,0 2)"), "LINESTRING(0 2,3 1,5 0)");
        // ...and an already-ordered linestring is untouched.
        assert_eq!(canon("LINESTRING(0 2,3 1,5 0)"), "LINESTRING(0 2,3 1,5 0)");
        // Ties on x fall back to y.
        assert_eq!(canon("LINESTRING(0 5,0 1)"), "LINESTRING(0 1,0 5)");
    }

    #[test]
    fn polygon_loops_become_clockwise() {
        // CCW square gets reversed to CW.
        assert_eq!(
            canon("POLYGON((0 0,1 0,1 1,0 1,0 0))"),
            "POLYGON((0 0,0 1,1 1,1 0,0 0))"
        );
        // Already CW stays.
        assert_eq!(
            canon("POLYGON((0 0,0 1,1 1,1 0,0 0))"),
            "POLYGON((0 0,0 1,1 1,1 0,0 0))"
        );
    }

    #[test]
    fn canonicalization_is_idempotent() {
        for wkt in [
            "MULTILINESTRING((0 2,1 0,3 1,3 1,5 0),EMPTY)",
            "GEOMETRYCOLLECTION(MULTIPOINT((0 0),(3 1)),POLYGON((0 0,5 0,0 5,0 0)))",
            "MULTIPOINT((1 1),(1 1))",
            "POINT EMPTY",
        ] {
            let once = canonicalize(&parse_wkt(wkt).unwrap());
            let twice = canonicalize(&once);
            assert_eq!(once, twice, "idempotence for {wkt}");
        }
    }

    #[test]
    fn value_level_only_options_leave_elements_alone() {
        let g = parse_wkt("MULTIPOINT((1 1),(1 1),EMPTY)").unwrap();
        let out = canonicalize_with(&g, CanonicalizeOptions::value_level_only());
        assert_eq!(out.num_geometries(), 3);
    }

    #[test]
    fn element_level_only_options_leave_vertices_alone() {
        let g = parse_wkt("MULTILINESTRING((0 0,1 1,1 1,2 2))").unwrap();
        let out = canonicalize_with(&g, CanonicalizeOptions::element_level_only());
        // Homogenized to a LINESTRING but duplicate vertex kept.
        assert_eq!(write_wkt(&out), "LINESTRING(0 0,1 1,1 1,2 2)");
    }

    #[test]
    fn mixed_collection_of_uniform_types_becomes_multi() {
        assert_eq!(
            canon("GEOMETRYCOLLECTION(LINESTRING(0 0,1 1),LINESTRING(2 2,3 3))"),
            "MULTILINESTRING((0 0,1 1),(2 2,3 3))"
        );
    }

    #[test]
    fn basic_geometries_pass_through_element_level() {
        assert_eq!(canon("POINT(1 2)"), "POINT(1 2)");
        assert_eq!(canon("POINT EMPTY"), "POINT EMPTY");
    }
}
