//! The seven OGC geometry types of the paper's Figure 2.
//!
//! Each type supports an EMPTY representation, because a large share of the
//! bugs the paper reports (6 of 20 logic bugs, §5.2) are triggered by EMPTY
//! elements or EMPTY geometries, so the whole stack must be able to represent
//! and propagate them faithfully.

use crate::coord::Coord;
use crate::envelope::Envelope;
use crate::geometry::Geometry;

/// A POINT: either a single coordinate or EMPTY.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Point {
    /// The coordinate, or `None` for `POINT EMPTY`.
    pub coord: Option<Coord>,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub fn new(x: f64, y: f64) -> Self {
        Point {
            coord: Some(Coord::new(x, y)),
        }
    }

    /// Creates a point from a coordinate.
    pub fn from_coord(c: Coord) -> Self {
        Point { coord: Some(c) }
    }

    /// Creates `POINT EMPTY`.
    pub fn empty() -> Self {
        Point { coord: None }
    }

    /// Whether this is `POINT EMPTY`.
    pub fn is_empty(&self) -> bool {
        self.coord.is_none()
    }

    /// Envelope of the point (empty for `POINT EMPTY`).
    pub fn envelope(&self) -> Envelope {
        match self.coord {
            Some(c) => Envelope::from_coord(c),
            None => Envelope::empty(),
        }
    }
}

/// A LINESTRING: an ordered list of vertices, or EMPTY when the list is empty.
///
/// A linestring with exactly one point is structurally invalid; validity is
/// checked separately (see [`crate::validity`]) because the random-shape
/// strategy of the paper deliberately produces syntactically valid but
/// semantically invalid geometries (§4.1).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LineString {
    /// The vertices in order.
    pub coords: Vec<Coord>,
}

impl LineString {
    /// Creates a linestring from vertices.
    pub fn new(coords: Vec<Coord>) -> Self {
        LineString { coords }
    }

    /// Creates `LINESTRING EMPTY`.
    pub fn empty() -> Self {
        LineString { coords: Vec::new() }
    }

    /// Whether this is `LINESTRING EMPTY`.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Whether the first and last vertices coincide (and there are at least
    /// four vertices), i.e. the linestring forms a ring.
    pub fn is_closed(&self) -> bool {
        self.coords.len() >= 4
            && self
                .coords
                .first()
                .zip(self.coords.last())
                .map(|(a, b)| a.approx_eq(b))
                .unwrap_or(false)
    }

    /// Number of vertices.
    pub fn num_points(&self) -> usize {
        self.coords.len()
    }

    /// The consecutive segments of the linestring.
    pub fn segments(&self) -> impl Iterator<Item = (Coord, Coord)> + '_ {
        self.coords.windows(2).map(|w| (w[0], w[1]))
    }

    /// Total length of the linestring.
    pub fn length(&self) -> f64 {
        self.segments().map(|(a, b)| a.distance(&b)).sum()
    }

    /// Envelope of all vertices.
    pub fn envelope(&self) -> Envelope {
        Envelope::from_coords(self.coords.iter().copied())
    }

    /// Returns a reversed copy.
    pub fn reversed(&self) -> LineString {
        let mut coords = self.coords.clone();
        coords.reverse();
        LineString { coords }
    }
}

/// A POLYGON: an exterior ring plus zero or more interior rings (holes), or
/// EMPTY when there are no rings.
///
/// Rings are stored as closed [`LineString`]s (first vertex repeated at the
/// end). Ring index 0 is the exterior ring.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polygon {
    /// The rings; `rings[0]` is the exterior ring, the rest are holes.
    pub rings: Vec<LineString>,
}

impl Polygon {
    /// Creates a polygon from rings (the first being the exterior ring).
    pub fn new(rings: Vec<LineString>) -> Self {
        Polygon { rings }
    }

    /// Creates a polygon with only an exterior ring.
    pub fn from_exterior(ring: LineString) -> Self {
        Polygon { rings: vec![ring] }
    }

    /// Creates `POLYGON EMPTY`.
    pub fn empty() -> Self {
        Polygon { rings: Vec::new() }
    }

    /// Whether this is `POLYGON EMPTY`.
    pub fn is_empty(&self) -> bool {
        self.rings.is_empty() || self.rings.iter().all(|r| r.is_empty())
    }

    /// The exterior ring, if any.
    pub fn exterior(&self) -> Option<&LineString> {
        self.rings.first()
    }

    /// The interior rings (holes).
    pub fn interiors(&self) -> &[LineString] {
        if self.rings.is_empty() {
            &[]
        } else {
            &self.rings[1..]
        }
    }

    /// Envelope over all rings.
    pub fn envelope(&self) -> Envelope {
        let mut env = Envelope::empty();
        for ring in &self.rings {
            env.expand_envelope(&ring.envelope());
        }
        env
    }
}

/// A MULTIPOINT: a collection of points (possibly containing EMPTY elements).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiPoint {
    /// The point elements.
    pub points: Vec<Point>,
}

impl MultiPoint {
    /// Creates a multipoint from elements.
    pub fn new(points: Vec<Point>) -> Self {
        MultiPoint { points }
    }

    /// Creates `MULTIPOINT EMPTY`.
    pub fn empty() -> Self {
        MultiPoint { points: Vec::new() }
    }

    /// Whether the multipoint has no non-EMPTY elements.
    pub fn is_empty(&self) -> bool {
        self.points.iter().all(|p| p.is_empty())
    }

    /// Envelope over all non-EMPTY elements.
    pub fn envelope(&self) -> Envelope {
        let mut env = Envelope::empty();
        for p in &self.points {
            env.expand_envelope(&p.envelope());
        }
        env
    }
}

/// A MULTILINESTRING: a collection of linestrings.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiLineString {
    /// The linestring elements.
    pub lines: Vec<LineString>,
}

impl MultiLineString {
    /// Creates a multilinestring from elements.
    pub fn new(lines: Vec<LineString>) -> Self {
        MultiLineString { lines }
    }

    /// Creates `MULTILINESTRING EMPTY`.
    pub fn empty() -> Self {
        MultiLineString { lines: Vec::new() }
    }

    /// Whether the multilinestring has no non-EMPTY elements.
    pub fn is_empty(&self) -> bool {
        self.lines.iter().all(|l| l.is_empty())
    }

    /// Envelope over all elements.
    pub fn envelope(&self) -> Envelope {
        let mut env = Envelope::empty();
        for l in &self.lines {
            env.expand_envelope(&l.envelope());
        }
        env
    }
}

/// A MULTIPOLYGON: a collection of polygons.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiPolygon {
    /// The polygon elements.
    pub polygons: Vec<Polygon>,
}

impl MultiPolygon {
    /// Creates a multipolygon from elements.
    pub fn new(polygons: Vec<Polygon>) -> Self {
        MultiPolygon { polygons }
    }

    /// Creates `MULTIPOLYGON EMPTY`.
    pub fn empty() -> Self {
        MultiPolygon {
            polygons: Vec::new(),
        }
    }

    /// Whether the multipolygon has no non-EMPTY elements.
    pub fn is_empty(&self) -> bool {
        self.polygons.iter().all(|p| p.is_empty())
    }

    /// Envelope over all elements.
    pub fn envelope(&self) -> Envelope {
        let mut env = Envelope::empty();
        for p in &self.polygons {
            env.expand_envelope(&p.envelope());
        }
        env
    }
}

/// A GEOMETRYCOLLECTION: elements of mixed geometry type (the paper's "MIXED
/// geometry"), the single largest source of logic bugs in the evaluation
/// (13 of 20 logic bugs, §5.2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GeometryCollection {
    /// The member geometries.
    pub geometries: Vec<Geometry>,
}

impl GeometryCollection {
    /// Creates a collection from elements.
    pub fn new(geometries: Vec<Geometry>) -> Self {
        GeometryCollection { geometries }
    }

    /// Creates `GEOMETRYCOLLECTION EMPTY`.
    pub fn empty() -> Self {
        GeometryCollection {
            geometries: Vec::new(),
        }
    }

    /// Whether the collection has no non-EMPTY elements.
    pub fn is_empty(&self) -> bool {
        self.geometries.iter().all(|g| g.is_empty())
    }

    /// Envelope over all elements.
    pub fn envelope(&self) -> Envelope {
        let mut env = Envelope::empty();
        for g in &self.geometries {
            env.expand_envelope(&g.envelope());
        }
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ls(coords: &[(f64, f64)]) -> LineString {
        LineString::new(coords.iter().map(|&(x, y)| Coord::new(x, y)).collect())
    }

    #[test]
    fn point_empty_and_filled() {
        assert!(Point::empty().is_empty());
        assert!(!Point::new(1.0, 2.0).is_empty());
        assert_eq!(Point::new(1.0, 2.0).coord, Some(Coord::new(1.0, 2.0)));
    }

    #[test]
    fn linestring_closed_detection() {
        let open = ls(&[(0.0, 0.0), (1.0, 1.0)]);
        assert!(!open.is_closed());
        let closed = ls(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 0.0)]);
        assert!(closed.is_closed());
        // Three points back to start is not a ring (needs >= 4 vertices).
        let degenerate = ls(&[(0.0, 0.0), (1.0, 0.0), (0.0, 0.0)]);
        assert!(!degenerate.is_closed());
    }

    #[test]
    fn linestring_length_and_segments() {
        let l = ls(&[(0.0, 0.0), (3.0, 0.0), (3.0, 4.0)]);
        assert_eq!(l.length(), 7.0);
        assert_eq!(l.segments().count(), 2);
    }

    #[test]
    fn polygon_exterior_and_holes() {
        let outer = ls(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 10.0),
            (0.0, 10.0),
            (0.0, 0.0),
        ]);
        let hole = ls(&[(2.0, 2.0), (4.0, 2.0), (4.0, 4.0), (2.0, 4.0), (2.0, 2.0)]);
        let p = Polygon::new(vec![outer.clone(), hole.clone()]);
        assert_eq!(p.exterior(), Some(&outer));
        assert_eq!(p.interiors(), &[hole]);
        assert!(!p.is_empty());
        assert!(Polygon::empty().is_empty());
    }

    #[test]
    fn multi_types_emptiness_ignores_empty_elements() {
        let mp = MultiPoint::new(vec![Point::empty(), Point::empty()]);
        assert!(mp.is_empty());
        let mp2 = MultiPoint::new(vec![Point::empty(), Point::new(1.0, 1.0)]);
        assert!(!mp2.is_empty());
        assert!(MultiLineString::empty().is_empty());
        assert!(MultiPolygon::empty().is_empty());
        assert!(GeometryCollection::empty().is_empty());
    }

    #[test]
    fn envelopes_cover_all_parts() {
        let l = ls(&[(0.0, 0.0), (2.0, 3.0)]);
        let env = l.envelope();
        assert_eq!(env.min_x(), 0.0);
        assert_eq!(env.max_y(), 3.0);
        assert!(Point::empty().envelope().is_empty());
    }

    #[test]
    fn reversed_linestring() {
        let l = ls(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        assert_eq!(
            l.reversed().coords,
            vec![
                Coord::new(2.0, 0.0),
                Coord::new(1.0, 0.0),
                Coord::new(0.0, 0.0)
            ]
        );
    }
}
