//! The [`Geometry`] enum: the common currency of the whole workspace.

use crate::coord::Coord;
use crate::dimension::Dimension;
use crate::envelope::Envelope;
use crate::types::{
    GeometryCollection, LineString, MultiLineString, MultiPoint, MultiPolygon, Point, Polygon,
};
use std::fmt;

/// The OGC geometry type tags (Figure 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GeometryType {
    /// POINT
    Point,
    /// LINESTRING
    LineString,
    /// POLYGON
    Polygon,
    /// MULTIPOINT
    MultiPoint,
    /// MULTILINESTRING
    MultiLineString,
    /// MULTIPOLYGON
    MultiPolygon,
    /// GEOMETRYCOLLECTION — the paper's "MIXED geometry"
    GeometryCollection,
}

impl GeometryType {
    /// All seven geometry types, in the order of the paper's Figure 2.
    pub const ALL: [GeometryType; 7] = [
        GeometryType::Point,
        GeometryType::LineString,
        GeometryType::Polygon,
        GeometryType::MultiPoint,
        GeometryType::MultiLineString,
        GeometryType::MultiPolygon,
        GeometryType::GeometryCollection,
    ];

    /// The WKT keyword for the type.
    pub fn wkt_name(&self) -> &'static str {
        match self {
            GeometryType::Point => "POINT",
            GeometryType::LineString => "LINESTRING",
            GeometryType::Polygon => "POLYGON",
            GeometryType::MultiPoint => "MULTIPOINT",
            GeometryType::MultiLineString => "MULTILINESTRING",
            GeometryType::MultiPolygon => "MULTIPOLYGON",
            GeometryType::GeometryCollection => "GEOMETRYCOLLECTION",
        }
    }

    /// Whether this is one of the MULTI types (not including collections).
    pub fn is_multi(&self) -> bool {
        matches!(
            self,
            GeometryType::MultiPoint | GeometryType::MultiLineString | GeometryType::MultiPolygon
        )
    }

    /// Whether this is the MIXED type (GEOMETRYCOLLECTION).
    pub fn is_mixed(&self) -> bool {
        matches!(self, GeometryType::GeometryCollection)
    }

    /// The basic (non-multi) type whose elements a MULTI type holds.
    pub fn element_type(&self) -> Option<GeometryType> {
        match self {
            GeometryType::MultiPoint => Some(GeometryType::Point),
            GeometryType::MultiLineString => Some(GeometryType::LineString),
            GeometryType::MultiPolygon => Some(GeometryType::Polygon),
            _ => None,
        }
    }

    /// The intrinsic topological dimension of a non-empty geometry of this
    /// type (0 for points, 1 for lines, 2 for polygons); `None` for
    /// collections whose dimension depends on their members.
    pub fn static_dimension(&self) -> Option<Dimension> {
        match self {
            GeometryType::Point | GeometryType::MultiPoint => Some(Dimension::Zero),
            GeometryType::LineString | GeometryType::MultiLineString => Some(Dimension::One),
            GeometryType::Polygon | GeometryType::MultiPolygon => Some(Dimension::Two),
            GeometryType::GeometryCollection => None,
        }
    }
}

impl fmt::Display for GeometryType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wkt_name())
    }
}

/// A 2D geometry of any of the seven OGC types.
#[derive(Debug, Clone, PartialEq)]
pub enum Geometry {
    /// POINT
    Point(Point),
    /// LINESTRING
    LineString(LineString),
    /// POLYGON
    Polygon(Polygon),
    /// MULTIPOINT
    MultiPoint(MultiPoint),
    /// MULTILINESTRING
    MultiLineString(MultiLineString),
    /// MULTIPOLYGON
    MultiPolygon(MultiPolygon),
    /// GEOMETRYCOLLECTION
    GeometryCollection(GeometryCollection),
}

impl Geometry {
    /// The type tag of this geometry.
    pub fn geometry_type(&self) -> GeometryType {
        match self {
            Geometry::Point(_) => GeometryType::Point,
            Geometry::LineString(_) => GeometryType::LineString,
            Geometry::Polygon(_) => GeometryType::Polygon,
            Geometry::MultiPoint(_) => GeometryType::MultiPoint,
            Geometry::MultiLineString(_) => GeometryType::MultiLineString,
            Geometry::MultiPolygon(_) => GeometryType::MultiPolygon,
            Geometry::GeometryCollection(_) => GeometryType::GeometryCollection,
        }
    }

    /// An EMPTY geometry of the given type.
    pub fn empty_of(gtype: GeometryType) -> Geometry {
        match gtype {
            GeometryType::Point => Geometry::Point(Point::empty()),
            GeometryType::LineString => Geometry::LineString(LineString::empty()),
            GeometryType::Polygon => Geometry::Polygon(Polygon::empty()),
            GeometryType::MultiPoint => Geometry::MultiPoint(MultiPoint::empty()),
            GeometryType::MultiLineString => Geometry::MultiLineString(MultiLineString::empty()),
            GeometryType::MultiPolygon => Geometry::MultiPolygon(MultiPolygon::empty()),
            GeometryType::GeometryCollection => {
                Geometry::GeometryCollection(GeometryCollection::empty())
            }
        }
    }

    /// Whether the geometry is EMPTY (has no non-EMPTY content).
    pub fn is_empty(&self) -> bool {
        match self {
            Geometry::Point(g) => g.is_empty(),
            Geometry::LineString(g) => g.is_empty(),
            Geometry::Polygon(g) => g.is_empty(),
            Geometry::MultiPoint(g) => g.is_empty(),
            Geometry::MultiLineString(g) => g.is_empty(),
            Geometry::MultiPolygon(g) => g.is_empty(),
            Geometry::GeometryCollection(g) => g.is_empty(),
        }
    }

    /// The topological dimension of the geometry: the maximum dimension of
    /// any non-EMPTY part, or [`Dimension::Empty`] for EMPTY geometries.
    pub fn dimension(&self) -> Dimension {
        match self {
            Geometry::Point(p) => {
                if p.is_empty() {
                    Dimension::Empty
                } else {
                    Dimension::Zero
                }
            }
            Geometry::LineString(l) => {
                if l.is_empty() {
                    Dimension::Empty
                } else {
                    Dimension::One
                }
            }
            Geometry::Polygon(p) => {
                if p.is_empty() {
                    Dimension::Empty
                } else {
                    Dimension::Two
                }
            }
            Geometry::MultiPoint(m) => {
                if m.is_empty() {
                    Dimension::Empty
                } else {
                    Dimension::Zero
                }
            }
            Geometry::MultiLineString(m) => {
                if m.is_empty() {
                    Dimension::Empty
                } else {
                    Dimension::One
                }
            }
            Geometry::MultiPolygon(m) => {
                if m.is_empty() {
                    Dimension::Empty
                } else {
                    Dimension::Two
                }
            }
            Geometry::GeometryCollection(c) => c
                .geometries
                .iter()
                .map(|g| g.dimension())
                .max()
                .unwrap_or(Dimension::Empty),
        }
    }

    /// Envelope of the geometry (the empty envelope for EMPTY geometries).
    pub fn envelope(&self) -> Envelope {
        match self {
            Geometry::Point(g) => g.envelope(),
            Geometry::LineString(g) => g.envelope(),
            Geometry::Polygon(g) => g.envelope(),
            Geometry::MultiPoint(g) => g.envelope(),
            Geometry::MultiLineString(g) => g.envelope(),
            Geometry::MultiPolygon(g) => g.envelope(),
            Geometry::GeometryCollection(g) => g.envelope(),
        }
    }

    /// Total number of vertices in the geometry (EMPTY parts contribute 0).
    pub fn num_coords(&self) -> usize {
        let mut n = 0;
        self.for_each_coord(&mut |_| n += 1);
        n
    }

    /// Visits every coordinate in the geometry, in storage order.
    pub fn for_each_coord(&self, f: &mut dyn FnMut(&Coord)) {
        match self {
            Geometry::Point(p) => {
                if let Some(c) = &p.coord {
                    f(c);
                }
            }
            Geometry::LineString(l) => l.coords.iter().for_each(f),
            Geometry::Polygon(p) => p
                .rings
                .iter()
                .for_each(|r| r.coords.iter().for_each(&mut *f)),
            Geometry::MultiPoint(m) => m.points.iter().for_each(|p| {
                if let Some(c) = &p.coord {
                    f(c);
                }
            }),
            Geometry::MultiLineString(m) => m
                .lines
                .iter()
                .for_each(|l| l.coords.iter().for_each(&mut *f)),
            Geometry::MultiPolygon(m) => m.polygons.iter().for_each(|p| {
                p.rings
                    .iter()
                    .for_each(|r| r.coords.iter().for_each(&mut *f))
            }),
            Geometry::GeometryCollection(c) => {
                c.geometries.iter().for_each(|g| g.for_each_coord(f))
            }
        }
    }

    /// Applies a function to every coordinate in place.
    pub fn map_coords(&mut self, f: &mut dyn FnMut(&mut Coord)) {
        match self {
            Geometry::Point(p) => {
                if let Some(c) = &mut p.coord {
                    f(c);
                }
            }
            Geometry::LineString(l) => l.coords.iter_mut().for_each(f),
            Geometry::Polygon(p) => p
                .rings
                .iter_mut()
                .for_each(|r| r.coords.iter_mut().for_each(&mut *f)),
            Geometry::MultiPoint(m) => m.points.iter_mut().for_each(|p| {
                if let Some(c) = &mut p.coord {
                    f(c);
                }
            }),
            Geometry::MultiLineString(m) => m
                .lines
                .iter_mut()
                .for_each(|l| l.coords.iter_mut().for_each(&mut *f)),
            Geometry::MultiPolygon(m) => m.polygons.iter_mut().for_each(|p| {
                p.rings
                    .iter_mut()
                    .for_each(|r| r.coords.iter_mut().for_each(&mut *f))
            }),
            Geometry::GeometryCollection(c) => {
                c.geometries.iter_mut().for_each(|g| g.map_coords(f))
            }
        }
    }

    /// Number of top-level elements: 1 for basic types, the element count for
    /// MULTI and MIXED types (matching `ST_NumGeometries`).
    pub fn num_geometries(&self) -> usize {
        match self {
            Geometry::MultiPoint(m) => m.points.len(),
            Geometry::MultiLineString(m) => m.lines.len(),
            Geometry::MultiPolygon(m) => m.polygons.len(),
            Geometry::GeometryCollection(c) => c.geometries.len(),
            _ => 1,
        }
    }

    /// The `n`-th element (1-based, matching `ST_GeometryN`).
    pub fn geometry_n(&self, n: usize) -> Option<Geometry> {
        if n == 0 {
            return None;
        }
        let idx = n - 1;
        match self {
            Geometry::MultiPoint(m) => m.points.get(idx).cloned().map(Geometry::Point),
            Geometry::MultiLineString(m) => m.lines.get(idx).cloned().map(Geometry::LineString),
            Geometry::MultiPolygon(m) => m.polygons.get(idx).cloned().map(Geometry::Polygon),
            Geometry::GeometryCollection(c) => c.geometries.get(idx).cloned(),
            other => {
                if idx == 0 {
                    Some(other.clone())
                } else {
                    None
                }
            }
        }
    }

    /// Flattens the geometry into its basic-type parts (recursively for
    /// collections). EMPTY parts are included.
    pub fn flatten(&self) -> Vec<Geometry> {
        let mut out = Vec::new();
        self.flatten_into(&mut out);
        out
    }

    fn flatten_into(&self, out: &mut Vec<Geometry>) {
        match self {
            Geometry::MultiPoint(m) => out.extend(m.points.iter().cloned().map(Geometry::Point)),
            Geometry::MultiLineString(m) => {
                out.extend(m.lines.iter().cloned().map(Geometry::LineString))
            }
            Geometry::MultiPolygon(m) => {
                out.extend(m.polygons.iter().cloned().map(Geometry::Polygon))
            }
            Geometry::GeometryCollection(c) => {
                for g in &c.geometries {
                    g.flatten_into(out);
                }
            }
            basic => out.push(basic.clone()),
        }
    }
}

impl From<Point> for Geometry {
    fn from(value: Point) -> Self {
        Geometry::Point(value)
    }
}
impl From<LineString> for Geometry {
    fn from(value: LineString) -> Self {
        Geometry::LineString(value)
    }
}
impl From<Polygon> for Geometry {
    fn from(value: Polygon) -> Self {
        Geometry::Polygon(value)
    }
}
impl From<MultiPoint> for Geometry {
    fn from(value: MultiPoint) -> Self {
        Geometry::MultiPoint(value)
    }
}
impl From<MultiLineString> for Geometry {
    fn from(value: MultiLineString) -> Self {
        Geometry::MultiLineString(value)
    }
}
impl From<MultiPolygon> for Geometry {
    fn from(value: MultiPolygon) -> Self {
        Geometry::MultiPolygon(value)
    }
}
impl From<GeometryCollection> for Geometry {
    fn from(value: GeometryCollection) -> Self {
        Geometry::GeometryCollection(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ls(coords: &[(f64, f64)]) -> LineString {
        LineString::new(coords.iter().map(|&(x, y)| Coord::new(x, y)).collect())
    }

    #[test]
    fn type_tags_and_names() {
        assert_eq!(GeometryType::Point.wkt_name(), "POINT");
        assert_eq!(
            GeometryType::GeometryCollection.to_string(),
            "GEOMETRYCOLLECTION"
        );
        assert!(GeometryType::MultiPolygon.is_multi());
        assert!(!GeometryType::Polygon.is_multi());
        assert!(GeometryType::GeometryCollection.is_mixed());
        assert_eq!(
            GeometryType::MultiLineString.element_type(),
            Some(GeometryType::LineString)
        );
        assert_eq!(GeometryType::ALL.len(), 7);
    }

    #[test]
    fn dimension_of_basic_types() {
        assert_eq!(
            Geometry::Point(Point::new(0.0, 0.0)).dimension(),
            Dimension::Zero
        );
        assert_eq!(
            Geometry::LineString(ls(&[(0.0, 0.0), (1.0, 1.0)])).dimension(),
            Dimension::One
        );
        assert_eq!(
            Geometry::Point(Point::empty()).dimension(),
            Dimension::Empty
        );
    }

    #[test]
    fn dimension_of_collection_is_max_of_members() {
        let gc = Geometry::GeometryCollection(GeometryCollection::new(vec![
            Geometry::Point(Point::new(0.0, 0.0)),
            Geometry::LineString(ls(&[(0.0, 0.0), (1.0, 1.0)])),
        ]));
        assert_eq!(gc.dimension(), Dimension::One);
        assert_eq!(
            Geometry::GeometryCollection(GeometryCollection::empty()).dimension(),
            Dimension::Empty
        );
    }

    #[test]
    fn num_coords_counts_all_vertices() {
        let poly = Polygon::from_exterior(ls(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 0.0)]));
        assert_eq!(Geometry::Polygon(poly).num_coords(), 4);
        assert_eq!(Geometry::Point(Point::empty()).num_coords(), 0);
    }

    #[test]
    fn geometry_n_is_one_based() {
        let mp = Geometry::MultiPoint(MultiPoint::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
        ]));
        assert_eq!(
            mp.geometry_n(1),
            Some(Geometry::Point(Point::new(0.0, 0.0)))
        );
        assert_eq!(
            mp.geometry_n(2),
            Some(Geometry::Point(Point::new(1.0, 1.0)))
        );
        assert_eq!(mp.geometry_n(0), None);
        assert_eq!(mp.geometry_n(3), None);
        let p = Geometry::Point(Point::new(5.0, 5.0));
        assert_eq!(p.geometry_n(1), Some(p.clone()));
    }

    #[test]
    fn flatten_recurses_into_collections() {
        let nested = Geometry::GeometryCollection(GeometryCollection::new(vec![
            Geometry::MultiPoint(MultiPoint::new(vec![Point::new(0.0, 0.0), Point::empty()])),
            Geometry::GeometryCollection(GeometryCollection::new(vec![Geometry::LineString(ls(
                &[(0.0, 0.0), (1.0, 0.0)],
            ))])),
        ]));
        let flat = nested.flatten();
        assert_eq!(flat.len(), 3);
        assert_eq!(flat[0].geometry_type(), GeometryType::Point);
        assert_eq!(flat[2].geometry_type(), GeometryType::LineString);
    }

    #[test]
    fn map_coords_translates() {
        let mut g = Geometry::LineString(ls(&[(0.0, 0.0), (1.0, 1.0)]));
        g.map_coords(&mut |c| {
            c.x += 10.0;
            c.y += 20.0;
        });
        assert_eq!(g, Geometry::LineString(ls(&[(10.0, 20.0), (11.0, 21.0)])));
    }

    #[test]
    fn empty_of_every_type_is_empty() {
        for t in GeometryType::ALL {
            assert!(Geometry::empty_of(t).is_empty(), "{t} should be empty");
        }
    }
}
