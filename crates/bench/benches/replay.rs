//! Replay recording overhead: the same campaign with and without a
//! [`ReplayRecorder`] attached, interleaved and median-timed, plus the size
//! of the resulting artifact and a live-bisection demonstration with its
//! execution count checked against the ⌈log₂ N⌉ + 1 budget.
//!
//! Recording hashes only values the iteration already computes (setup SQL,
//! plan coefficients, oracle outcomes, the probe delta), so the acceptance
//! criterion is a hard one: < 5% overhead over the no-sink campaign.
//! Emits `BENCH_replay.json` in the workspace root.

use spatter_core::campaign::CampaignConfig;
use spatter_core::replay::bisect::{bisect_against_live, max_bisect_executions, ReplayExecutor};
use spatter_core::replay::{ReplayRecorder, ReplaySink};
use spatter_core::runner::CampaignRunner;
use std::sync::Arc;
use std::time::Instant;

const ITERATIONS: usize = 32;
const THREADS: usize = 2;
const REPS: usize = 5;

fn campaign() -> CampaignConfig {
    CampaignConfig {
        iterations: ITERATIONS,
        ..CampaignConfig::default()
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn main() {
    println!("== Replay recording overhead (default campaign config x{ITERATIONS}) ==\n");

    // Interleave the two variants so drift (thermal, cache, scheduler)
    // hits both equally; compare medians.
    let mut plain = Vec::with_capacity(REPS);
    let mut recorded = Vec::with_capacity(REPS);
    let mut fingerprints = (String::new(), String::new());
    let recorder = Arc::new(ReplayRecorder::new());
    for _ in 0..REPS {
        let start = Instant::now();
        let report = CampaignRunner::new(campaign()).with_workers(THREADS).run();
        plain.push(start.elapsed().as_secs_f64());
        fingerprints.0 = report.determinism_fingerprint();

        let start = Instant::now();
        let report = CampaignRunner::new(campaign())
            .with_workers(THREADS)
            .with_replay_sink(recorder.clone() as Arc<dyn ReplaySink>)
            .run();
        recorded.push(start.elapsed().as_secs_f64());
        fingerprints.1 = report.determinism_fingerprint();
    }
    assert_eq!(
        fingerprints.0, fingerprints.1,
        "attaching a replay sink must not perturb the campaign"
    );

    let plain_s = median(&mut plain);
    let recorded_s = median(&mut recorded);
    let overhead_pct = (recorded_s / plain_s.max(f64::EPSILON) - 1.0) * 100.0;
    let artifact = recorder.log(&campaign()).encode();

    let widths = [22, 12, 12, 12];
    spatter_bench::print_row(
        &["variant", "median (s)", "iters/sec", "overhead"].map(String::from),
        &widths,
    );
    for (label, seconds) in [("no sink", plain_s), ("replay recorder", recorded_s)] {
        spatter_bench::print_row(
            &[
                label.to_string(),
                format!("{seconds:.4}"),
                format!("{:.2}", ITERATIONS as f64 / seconds.max(f64::EPSILON)),
                if label == "no sink" {
                    "-".to_string()
                } else {
                    format!("{overhead_pct:+.2}%")
                },
            ],
            &widths,
        );
    }
    println!(
        "\nartifact: {} frames, {} bytes ({:.1} bytes/iteration)",
        ITERATIONS,
        artifact.len(),
        artifact.len() as f64 / ITERATIONS as f64
    );
    assert!(
        overhead_pct < 5.0,
        "recording overhead {overhead_pct:.2}% exceeds the 5% criterion"
    );

    // Live bisection demo: re-execute against the recording we just made.
    // Same build, same config — no divergence, and the probe count stays
    // within the ⌈log₂ N⌉ + 1 budget.
    let reference = recorder.log(&campaign());
    let executor = ReplayExecutor::new(campaign());
    let bisect_start = Instant::now();
    let outcome = bisect_against_live(&reference, |iteration| executor.frame(iteration));
    let bisect_s = bisect_start.elapsed().as_secs_f64();
    let budget = max_bisect_executions(reference.frames.len());
    assert!(outcome.divergence.is_none(), "self-bisect must match");
    assert!(outcome.executions <= budget);
    println!(
        "bisect (self, {} frames): {} executions (budget {budget}), {:.4}s",
        reference.frames.len(),
        outcome.executions,
        bisect_s
    );

    let json = format!(
        "{{\n  \"bench\": \"replay\",\n  \"config\": \"CampaignConfig::default() x{ITERATIONS} iterations, {THREADS} threads, median of {REPS}\",\n  \"no_sink_seconds\": {plain_s:.4},\n  \"recorded_seconds\": {recorded_s:.4},\n  \"overhead_pct\": {overhead_pct:.3},\n  \"artifact_bytes\": {},\n  \"artifact_frames\": {ITERATIONS},\n  \"bisect_executions\": {},\n  \"bisect_budget\": {budget},\n  \"bisect_seconds\": {bisect_s:.4}\n}}\n",
        artifact.len(),
        outcome.executions,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replay.json");
    std::fs::write(path, &json).expect("write BENCH_replay.json");
    println!("wrote {path}");
}
