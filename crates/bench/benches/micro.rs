//! Criterion micro-benchmarks of the hot paths: DE-9IM relate, the
//! geometry-aware generator and AEI database construction.

use criterion::{criterion_group, criterion_main, Criterion};
use spatter_core::generator::{GenerationStrategy, GeneratorConfig, GeometryGenerator};
use spatter_core::transform::{AffineStrategy, TransformPlan};
use spatter_geom::wkt::parse_wkt;
use spatter_topo::predicates::NamedPredicate;
use spatter_topo::relate::relate;
use std::hint::black_box;

fn bench_relate(c: &mut Criterion) {
    let polygon = parse_wkt("POLYGON((0 0,10 0,10 10,0 10,0 0),(4 4,6 4,6 6,4 6,4 4))").unwrap();
    let line = parse_wkt("LINESTRING(-5 5,15 5,15 20)").unwrap();
    let other = parse_wkt("POLYGON((5 5,15 5,15 15,5 15,5 5))").unwrap();
    c.bench_function("relate_polygon_line", |b| {
        b.iter(|| black_box(relate(black_box(&polygon), black_box(&line))))
    });
    c.bench_function("relate_polygon_polygon", |b| {
        b.iter(|| black_box(relate(black_box(&polygon), black_box(&other))))
    });
    c.bench_function("predicate_intersects", |b| {
        b.iter(|| black_box(NamedPredicate::Intersects.evaluate(black_box(&polygon), black_box(&other))))
    });
}

fn bench_generator(c: &mut Criterion) {
    c.bench_function("geometry_aware_generate_n50", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut generator = GeometryGenerator::new(
                GeneratorConfig {
                    num_geometries: 50,
                    num_tables: 2,
                    strategy: GenerationStrategy::GeometryAware,
                    coordinate_range: 50,
                    random_shape_probability: 0.5,
                },
                seed,
            );
            black_box(generator.generate_database())
        })
    });
    c.bench_function("aei_transform_n50", |b| {
        let mut generator = GeometryGenerator::new(GeneratorConfig::default(), 9);
        let spec = generator.generate_database();
        let plan = TransformPlan::random(AffineStrategy::GeneralInteger, 4);
        b.iter(|| black_box(plan.apply(black_box(&spec))))
    });
}

criterion_group!(benches, bench_relate, bench_generator);
criterion_main!(benches);
