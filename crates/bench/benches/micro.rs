//! Micro-benchmarks of the hot paths: DE-9IM relate, the geometry-aware
//! generator and AEI database construction.
//!
//! Hermetic build environments have no crates.io mirror, so instead of
//! criterion this uses a small manual harness: warm up, then report the mean
//! over a fixed number of timed batches.

use spatter_core::generator::{GenerationStrategy, GeneratorConfig, GeometryGenerator};
use spatter_core::transform::{AffineStrategy, TransformPlan};
use spatter_geom::wkt::parse_wkt;
use spatter_topo::predicates::NamedPredicate;
use spatter_topo::relate::relate;
use std::hint::black_box;
use std::time::Instant;

/// Times `f` over `batch` calls, repeated `repeats` times; prints the mean
/// per-call latency of the fastest batch (criterion-style minimum-noise
/// estimate).
fn bench<T>(name: &str, batch: u32, repeats: u32, mut f: impl FnMut() -> T) {
    // Warm-up.
    for _ in 0..batch {
        black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let per_call = start.elapsed().as_secs_f64() / batch as f64;
        best = best.min(per_call);
    }
    println!("{name:<32} {:>12.3} µs/iter", best * 1e6);
}

fn bench_relate() {
    let polygon = parse_wkt("POLYGON((0 0,10 0,10 10,0 10,0 0),(4 4,6 4,6 6,4 6,4 4))").unwrap();
    let line = parse_wkt("LINESTRING(-5 5,15 5,15 20)").unwrap();
    let other = parse_wkt("POLYGON((5 5,15 5,15 15,5 15,5 5))").unwrap();
    bench("relate_polygon_line", 200, 20, || {
        relate(black_box(&polygon), black_box(&line))
    });
    bench("relate_polygon_polygon", 200, 20, || {
        relate(black_box(&polygon), black_box(&other))
    });
    bench("predicate_intersects", 200, 20, || {
        NamedPredicate::Intersects.evaluate(black_box(&polygon), black_box(&other))
    });
}

fn bench_generator() {
    let mut seed = 0u64;
    bench("geometry_aware_generate_n50", 50, 10, || {
        seed += 1;
        let mut generator = GeometryGenerator::new(
            GeneratorConfig {
                num_geometries: 50,
                num_tables: 2,
                strategy: GenerationStrategy::GeometryAware,
                coordinate_range: 50,
                random_shape_probability: 0.5,
            },
            seed,
        );
        generator.generate_database()
    });

    let mut generator = GeometryGenerator::new(GeneratorConfig::default(), 9);
    let spec = generator.generate_database();
    let plan = TransformPlan::random(AffineStrategy::GeneralInteger, 4);
    bench("aei_transform_n50", 200, 20, || {
        plan.apply(black_box(&spec))
    });
}

fn main() {
    println!("== Micro-benchmarks ==\n");
    bench_relate();
    bench_generator();
}
