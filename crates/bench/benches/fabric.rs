//! Campaign-fabric benchmark: what the transport and scheduling layers
//! cost on top of the campaign itself.
//!
//! Three comparisons over the default campaign config:
//!
//! 1. **stdio vs TCP** — the same 2-process fleet driven over child-process
//!    pipes and over loopback sockets (48 iterations each): the TCP framing
//!    and accept path must be noise next to iteration cost.
//! 2. **Epoch-barrier exchange** — a guided campaign with the frozen
//!    warm-up snapshot vs the same campaign re-merging and re-broadcasting
//!    coverage every 8 iterations: the price of fresher guidance.
//! 3. **Fixed vs adaptive leases under a straggler** — one slot slowed by
//!    20ms/iteration: the adaptive policy should cut campaign completion
//!    time (the tail is the straggler finishing its last lease).
//!
//! Emits `BENCH_fabric.json` in the workspace root. All rows need the
//! `spatter-campaign-worker` binary (built by `cargo build --workspace`);
//! when absent only the in-process reference row is recorded.

use spatter_core::campaign::CampaignConfig;
use spatter_core::dist::{DistConfig, DistRunner, DistStats};
use spatter_core::fabric::TcpTransport;
use spatter_core::guidance::GuidanceMode;
use spatter_core::runner::CampaignRunner;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const ITERATIONS: usize = 48;

struct Sample {
    label: String,
    seconds: f64,
    iters_per_sec: f64,
    stats: Option<DistStats>,
    fingerprint: String,
}

fn campaign(guidance: GuidanceMode, epoch: Option<usize>) -> CampaignConfig {
    CampaignConfig {
        iterations: ITERATIONS,
        guidance,
        guidance_epoch: epoch,
        ..CampaignConfig::default()
    }
}

fn bench_in_process() -> Sample {
    let start = Instant::now();
    let report = CampaignRunner::new(campaign(GuidanceMode::Off, None))
        .with_workers(2)
        .run();
    let seconds = start.elapsed().as_secs_f64();
    Sample {
        label: "in-process".to_string(),
        seconds,
        iters_per_sec: report.iterations_run as f64 / seconds.max(f64::EPSILON),
        stats: None,
        fingerprint: report.determinism_fingerprint(),
    }
}

fn bench_fleet(label: &str, config: CampaignConfig, dist: DistConfig, tcp: bool) -> Sample {
    let mut runner = DistRunner::new(config, dist);
    if tcp {
        let transport = TcpTransport::loopback()
            .expect("bind loopback listener")
            .with_spawned_workers(worker_binary().expect("worker binary"));
        runner = runner.with_transport(Box::new(transport));
    }
    let start = Instant::now();
    let (report, stats) = runner.run_with_stats().expect("distributed campaign");
    let seconds = start.elapsed().as_secs_f64();
    Sample {
        label: label.to_string(),
        seconds,
        iters_per_sec: report.iterations_run as f64 / seconds.max(f64::EPSILON),
        stats: Some(stats),
        fingerprint: report.determinism_fingerprint(),
    }
}

/// Locates the worker binary next to this bench executable
/// (`target/<profile>/spatter-campaign-worker`), if it has been built.
fn worker_binary() -> Option<PathBuf> {
    let mut path = std::env::current_exe().ok()?;
    path.pop(); // the bench executable
    if path.ends_with("deps") {
        path.pop();
    }
    for name in ["spatter-campaign-worker", "spatter-campaign-worker.exe"] {
        let candidate = path.join(name);
        if candidate.is_file() {
            return Some(candidate);
        }
    }
    None
}

fn main() {
    println!("== Campaign fabric: transport, epoch, and lease overhead (x{ITERATIONS}) ==\n");

    let reference = bench_in_process();
    let mut samples = vec![reference];

    if let Some(worker) = worker_binary() {
        let fleet = || {
            DistConfig::new(&worker)
                .with_processes(2)
                .with_threads_per_worker(2)
        };
        samples.push(bench_fleet(
            "stdio",
            campaign(GuidanceMode::Off, None),
            fleet(),
            false,
        ));
        samples.push(bench_fleet(
            "tcp",
            campaign(GuidanceMode::Off, None),
            fleet(),
            true,
        ));
        samples.push(bench_fleet(
            "guided-frozen",
            campaign(GuidanceMode::ColdProbe, None),
            fleet(),
            false,
        ));
        samples.push(bench_fleet(
            "guided-epoch8",
            campaign(GuidanceMode::ColdProbe, Some(8)),
            fleet(),
            false,
        ));
        let straggler = |dist: DistConfig| {
            dist.with_processes(2)
                .with_threads_per_worker(1)
                .with_worker_slot_args(0, vec!["--iteration-delay-ms".into(), "20".into()])
        };
        samples.push(bench_fleet(
            "straggler-fixed",
            campaign(GuidanceMode::Off, None),
            straggler(DistConfig::new(&worker).with_lease_chunk(1)),
            false,
        ));
        samples.push(bench_fleet(
            "straggler-adaptive",
            campaign(GuidanceMode::Off, None),
            straggler(DistConfig::new(&worker).with_adaptive_leases(
                1,
                4,
                Duration::from_millis(150),
            )),
            false,
        ));
    } else {
        println!(
            "note: spatter-campaign-worker binary not found next to the bench \
             executable; fabric rows skipped (run `cargo build --workspace` first)\n"
        );
    }

    let widths = [18, 9, 10, 8, 8, 9, 12];
    spatter_bench::print_row(
        &[
            "config",
            "time (s)",
            "iters/sec",
            "leases",
            "resized",
            "epochs",
            "rec/slot",
        ]
        .map(String::from),
        &widths,
    );
    for sample in &samples {
        let (leases, resized, epochs, per_slot) = match &sample.stats {
            Some(stats) => (
                stats.leases_granted.to_string(),
                stats.leases_resized.to_string(),
                stats.guidance_epochs.to_string(),
                format!("{:?}", stats.records_per_slot),
            ),
            None => ("-".into(), "-".into(), "-".into(), "-".into()),
        };
        spatter_bench::print_row(
            &[
                sample.label.clone(),
                format!("{:.3}", sample.seconds),
                format!("{:.2}", sample.iters_per_sec),
                leases,
                resized,
                epochs,
                per_slot,
            ],
            &widths,
        );
    }

    // Determinism spot checks: identical configs agree bytewise regardless
    // of transport or lease policy.
    let by_label = |label: &str| samples.iter().find(|s| s.label == label);
    for (a, b) in [
        ("in-process", "stdio"),
        ("stdio", "tcp"),
        ("in-process", "straggler-fixed"),
        ("straggler-fixed", "straggler-adaptive"),
    ] {
        if let (Some(a), Some(b)) = (by_label(a), by_label(b)) {
            assert_eq!(
                a.fingerprint, b.fingerprint,
                "{} and {} must agree bytewise",
                a.label, b.label
            );
        }
    }

    let entries: Vec<String> = samples
        .iter()
        .map(|s| {
            let (leases, resized, epochs) = match &s.stats {
                Some(stats) => (
                    stats.leases_granted,
                    stats.leases_resized,
                    stats.guidance_epochs,
                ),
                None => (0, 0, 0),
            };
            format!(
                "    {{\"config\": \"{}\", \"iterations\": {ITERATIONS}, \"seconds\": {:.4}, \"iters_per_sec\": {:.3}, \"leases\": {leases}, \"leases_resized\": {resized}, \"guidance_epochs\": {epochs}}}",
                s.label, s.seconds, s.iters_per_sec
            )
        })
        .collect();
    let overhead = |a: &str, b: &str| -> f64 {
        match (by_label(a), by_label(b)) {
            (Some(a), Some(b)) => (b.seconds - a.seconds) / a.seconds.max(f64::EPSILON),
            _ => 0.0,
        }
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"fabric\",\n  \"config\": \"CampaignConfig::default() x{ITERATIONS} iterations, 2x2 fleet\",\n  \"host_available_parallelism\": {cores},\n  \"tcp_overhead_vs_stdio\": {:.4},\n  \"epoch_overhead_vs_frozen\": {:.4},\n  \"adaptive_speedup_vs_fixed_straggler\": {:.4},\n  \"samples\": [\n{}\n  ]\n}}\n",
        overhead("stdio", "tcp"),
        overhead("guided-frozen", "guided-epoch8"),
        overhead("straggler-adaptive", "straggler-fixed"),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fabric.json");
    std::fs::write(path, &json).expect("write BENCH_fabric.json");
    println!("\nwrote {path}");
}
