//! Mutation-workload cost: the same campaign load-once vs with the default
//! interleaved DML/DDL script, interleaved and median-timed, plus the
//! incremental-maintenance argument in isolation — delete + reinsert of a
//! churn batch against rebuilding the R-tree from scratch after the same
//! batch. Emits `BENCH_mutation_campaign.json` in the workspace root.

use spatter_core::campaign::CampaignConfig;
use spatter_core::mutation::MutationConfig;
use spatter_core::runner::CampaignRunner;
use spatter_geom::envelope::Envelope;
use spatter_index::RTree;
use std::time::Instant;

const ITERATIONS: usize = 24;
const THREADS: usize = 2;
const REPS: usize = 5;

const TREE_SIZE: usize = 4096;
const CHURN: usize = 512;

fn campaign(mutations: Option<MutationConfig>) -> CampaignConfig {
    CampaignConfig {
        iterations: ITERATIONS,
        mutations,
        ..CampaignConfig::default()
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Deterministic envelope cloud (SplitMix64-style scramble, no RNG dep).
fn envelopes(n: usize) -> Vec<(Envelope, usize)> {
    (0..n)
        .map(|i| {
            let mut z = (i as u64).wrapping_add(0x9e3779b97f4a7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            let x = ((z >> 32) % 10_000) as f64 / 10.0 - 500.0;
            let y = (z % 10_000) as f64 / 10.0 - 500.0;
            (Envelope::from_bounds(x, y, x + 1.5, y + 1.5), i)
        })
        .collect()
}

fn main() {
    println!("== Mutation campaign cost (default campaign config x{ITERATIONS}) ==\n");

    // Interleave the variants so drift hits both equally; compare medians.
    let mut load_once = Vec::with_capacity(REPS);
    let mut mutated = Vec::with_capacity(REPS);
    let mut findings = (0usize, 0usize);
    for _ in 0..REPS {
        let start = Instant::now();
        let report = CampaignRunner::new(campaign(None))
            .with_workers(THREADS)
            .run();
        load_once.push(start.elapsed().as_secs_f64());
        findings.0 = report.findings.len();

        let start = Instant::now();
        let report = CampaignRunner::new(campaign(Some(MutationConfig::default())))
            .with_workers(THREADS)
            .run();
        mutated.push(start.elapsed().as_secs_f64());
        findings.1 = report.findings.len();
    }
    let load_once_s = median(&mut load_once);
    let mutated_s = median(&mut mutated);
    let mutation_overhead_pct = (mutated_s / load_once_s.max(f64::EPSILON) - 1.0) * 100.0;

    let widths = [22, 12, 12, 12];
    spatter_bench::print_row(
        &["variant", "median (s)", "iters/sec", "overhead"].map(String::from),
        &widths,
    );
    for (label, seconds) in [("load-once", load_once_s), ("mutation script", mutated_s)] {
        spatter_bench::print_row(
            &[
                label.to_string(),
                format!("{seconds:.4}"),
                format!("{:.2}", ITERATIONS as f64 / seconds.max(f64::EPSILON)),
                if label == "load-once" {
                    "-".to_string()
                } else {
                    format!("{mutation_overhead_pct:+.2}%")
                },
            ],
            &widths,
        );
    }
    println!(
        "findings: load-once {}, mutated {}\n",
        findings.0, findings.1
    );

    // Incremental maintenance vs rebuild: churn CHURN of TREE_SIZE entries
    // (delete + reinsert at a shifted position) against rebuilding the whole
    // tree from the post-churn entry set.
    let base = envelopes(TREE_SIZE);
    let mut incremental = Vec::with_capacity(REPS);
    let mut rebuild = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let mut tree: RTree<usize> = RTree::bulk_load(base.iter().cloned());
        let start = Instant::now();
        for (envelope, value) in base.iter().take(CHURN) {
            let moved = Envelope::from_bounds(
                envelope.min_x() + 3.0,
                envelope.min_y() - 2.0,
                envelope.max_x() + 3.0,
                envelope.max_y() - 2.0,
            );
            assert!(tree.reinsert(envelope, moved, *value));
        }
        incremental.push(start.elapsed().as_secs_f64());
        assert_eq!(tree.len(), TREE_SIZE);

        let start = Instant::now();
        let rebuilt: RTree<usize> = RTree::bulk_load(base.iter().enumerate().map(|(i, (e, v))| {
            if i < CHURN {
                (
                    Envelope::from_bounds(
                        e.min_x() + 3.0,
                        e.min_y() - 2.0,
                        e.max_x() + 3.0,
                        e.max_y() - 2.0,
                    ),
                    *v,
                )
            } else {
                (*e, *v)
            }
        }));
        rebuild.push(start.elapsed().as_secs_f64());
        assert_eq!(rebuilt.len(), TREE_SIZE);
    }
    let incremental_s = median(&mut incremental);
    let rebuild_s = median(&mut rebuild);
    let reinsert_vs_rebuild = incremental_s / rebuild_s.max(f64::EPSILON);
    println!(
        "index churn ({CHURN} of {TREE_SIZE} entries): reinsert {:.6}s, rebuild {:.6}s, ratio {:.3}x",
        incremental_s, rebuild_s, reinsert_vs_rebuild
    );

    let json = format!(
        "{{\n  \"bench\": \"mutation_campaign\",\n  \"config\": \"CampaignConfig::default() x{ITERATIONS} iterations, {THREADS} threads, median of {REPS}\",\n  \"load_once_seconds\": {load_once_s:.4},\n  \"mutated_seconds\": {mutated_s:.4},\n  \"mutation_overhead_pct\": {mutation_overhead_pct:.3},\n  \"tree_size\": {TREE_SIZE},\n  \"churned_entries\": {CHURN},\n  \"reinsert_seconds\": {incremental_s:.6},\n  \"rebuild_seconds\": {rebuild_s:.6},\n  \"reinsert_vs_rebuild_ratio\": {reinsert_vs_rebuild:.3}\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_mutation_campaign.json"
    );
    std::fs::write(path, &json).expect("write BENCH_mutation_campaign.json");
    println!("wrote {path}");
}
