//! Coverage-guided vs unguided campaign comparison: distinct probes covered
//! per equal iteration budget, and seeded-fault time-to-detection, with the
//! worker-count determinism of both modes cross-checked.
//!
//! Emits `BENCH_coverage_guided.json` in the workspace root so the guidance
//! subsystem's value (and its determinism) is recorded per PR.

use spatter_core::campaign::{CampaignConfig, CampaignReport};
use spatter_core::guidance::GuidanceMode;
use spatter_core::runner::CampaignRunner;
use std::time::Instant;

const ITERATIONS: usize = 48;
const SEED: u64 = 5;

#[derive(Clone, Copy)]
struct Sample {
    mode: &'static str,
    workers: usize,
    seconds: f64,
    probes_covered: usize,
    findings: usize,
    unique_bugs: usize,
    /// Earliest iteration index whose finding attributed to a seeded fault
    /// (the deterministic time-to-detection metric — wall time depends on
    /// the host, iteration indices do not).
    first_detection: Option<usize>,
}

fn mode_name(mode: GuidanceMode) -> &'static str {
    match mode {
        GuidanceMode::Off => "unguided",
        GuidanceMode::ColdProbe => "cold-probe",
    }
}

fn first_detection(report: &CampaignReport) -> Option<usize> {
    report
        .findings
        .iter()
        .filter(|f| !f.attributed_faults.is_empty())
        .map(|f| f.iteration)
        .min()
}

/// The scheduling-independent projection that must match across workers
/// (shared with `tests/coverage_guided.rs` via the report method).
fn fingerprint(report: &CampaignReport) -> String {
    report.determinism_fingerprint()
}

fn run(mode: GuidanceMode, workers: usize) -> (Sample, String) {
    let config = CampaignConfig {
        iterations: ITERATIONS,
        guidance: mode,
        seed: SEED,
        ..CampaignConfig::default()
    };
    let start = Instant::now();
    let report = CampaignRunner::new(config).with_workers(workers).run();
    let seconds = start.elapsed().as_secs_f64();
    let sample = Sample {
        mode: mode_name(mode),
        workers,
        seconds,
        probes_covered: report.probes_covered(),
        findings: report.findings.len(),
        unique_bugs: report.unique_bug_count(),
        first_detection: first_detection(&report),
    };
    (sample, fingerprint(&report))
}

fn main() {
    println!(
        "== Coverage-guided vs unguided campaigns ({ITERATIONS} iterations, seed {SEED}) ==\n"
    );
    let widths = [12, 8, 10, 8, 10, 12, 16];
    spatter_bench::print_row(
        &[
            "mode",
            "workers",
            "time (s)",
            "probes",
            "findings",
            "unique bugs",
            "first detection",
        ]
        .map(String::from),
        &widths,
    );

    let mut samples: Vec<Sample> = Vec::new();
    let mut per_mode: Vec<(GuidanceMode, Sample)> = Vec::new();
    for mode in [GuidanceMode::Off, GuidanceMode::ColdProbe] {
        let mut fingerprints: Vec<String> = Vec::new();
        for workers in [1usize, 2, 4] {
            let (sample, fp) = run(mode, workers);
            spatter_bench::print_row(
                &[
                    sample.mode.to_string(),
                    sample.workers.to_string(),
                    format!("{:.3}", sample.seconds),
                    sample.probes_covered.to_string(),
                    sample.findings.to_string(),
                    sample.unique_bugs.to_string(),
                    sample
                        .first_detection
                        .map(|i| format!("iter {i}"))
                        .unwrap_or_else(|| "-".into()),
                ],
                &widths,
            );
            fingerprints.push(fp);
            if workers == 1 {
                per_mode.push((mode, sample));
            }
            samples.push(sample);
        }
        // Determinism: findings, skips, attribution and probe coverage are
        // byte-identical at 1/2/4 workers in both modes.
        assert!(
            fingerprints.windows(2).all(|w| w[0] == w[1]),
            "{} campaigns diverged across worker counts",
            mode_name(mode)
        );
    }

    let unguided = &per_mode[0].1;
    let guided = &per_mode[1].1;
    // The guidance acceptance bar: per equal iteration budget, guided mode
    // covers at least the unguided probe count and detects a seeded fault no
    // later (iteration-index time-to-detection).
    assert!(
        guided.probes_covered >= unguided.probes_covered,
        "guided covered {} probes, unguided {}",
        guided.probes_covered,
        unguided.probes_covered
    );
    match (guided.first_detection, unguided.first_detection) {
        (Some(g), Some(u)) => assert!(
            g <= u,
            "guided first detection at iteration {g}, unguided at {u}"
        ),
        (None, Some(u)) => panic!("guided mode missed the fault unguided found at iteration {u}"),
        _ => {}
    }

    let entries: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"mode\": \"{}\", \"workers\": {}, \"seconds\": {:.4}, \"probes_covered\": {}, \"findings\": {}, \"unique_bugs\": {}, \"first_detection_iteration\": {}}}",
                s.mode,
                s.workers,
                s.seconds,
                s.probes_covered,
                s.findings,
                s.unique_bugs,
                s.first_detection
                    .map(|i| i.to_string())
                    .unwrap_or_else(|| "null".into())
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"coverage_guided\",\n  \"config\": \"CampaignConfig::default() x{ITERATIONS} iterations, seed {SEED}\",\n  \"guided_probes\": {},\n  \"unguided_probes\": {},\n  \"determinism_ok\": true,\n  \"samples\": [\n{}\n  ]\n}}\n",
        guided.probes_covered,
        unguided.probes_covered,
        entries.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_coverage_guided.json"
    );
    std::fs::write(path, &json).expect("write BENCH_coverage_guided.json");
    println!("\nwrote {path}");
}
