//! Throughput benchmark of the §7 distance-parameterised query templates:
//! range joins (`ST_DWithin`) under each of the three physical plans —
//! nested loop, prepared envelope-screened scan, and R-tree index probe —
//! across a 64/256/1024 rows axis, plus the KNN queries (sequential
//! `ORDER BY ST_Distance` sort versus the index-accelerated
//! nearest-neighbour path).
//!
//! Emits `BENCH_distance_templates.json` in the workspace root so the perf
//! trajectory of the workload class is recorded per PR, including the
//! speedup of the distance-join plans over the nested-loop baseline.

use spatter_core::rng::{RngExt, SeedableRng, StdRng};
use spatter_sdb::engine::plan;
use spatter_sdb::{Engine, EngineProfile};
use std::time::Instant;

/// Rows axis for the range-join workloads. The nested-loop baseline is
/// O(rows^2) per query, so the per-rows query budget shrinks accordingly.
const ROWS_AXIS: &[(usize, usize)] = &[(64, 400), (256, 100), (1024, 16)];

/// Fixed shape of the KNN workloads (unchanged from the original record).
const KNN_ROWS: usize = 64;
const KNN_QUERIES: usize = 400;

/// The nested-loop `range_join_dwithin` throughput recorded by the seed
/// bench at 64 rows; the headline speedup is measured against it.
const SEED_BASELINE_QPS: f64 = 387.21;

fn load_points(engine: &mut Engine, rows: usize) {
    engine.execute("CREATE TABLE t (g geometry)").unwrap();
    // Deterministic pseudo-random integer layout.
    let mut rng = StdRng::seed_from_u64(1234);
    for _ in 0..rows {
        let (x, y) = (
            rng.random_range(-100..=100i64),
            rng.random_range(-100..=100i64),
        );
        engine
            .execute(&format!("INSERT INTO t (g) VALUES ('POINT({x} {y})')"))
            .unwrap();
    }
}

struct Sample {
    name: String,
    rows: usize,
    queries: usize,
    seconds: f64,
    queries_per_sec: f64,
}

fn bench<F: FnMut(usize)>(name: String, rows: usize, queries: usize, mut run: F) -> Sample {
    let start = Instant::now();
    for i in 0..queries {
        run(i);
    }
    let seconds = start.elapsed().as_secs_f64();
    Sample {
        name,
        rows,
        queries,
        seconds,
        queries_per_sec: queries as f64 / seconds.max(f64::EPSILON),
    }
}

fn range_join_engine(rows: usize, indexed: bool) -> Engine {
    let mut engine = Engine::reference(EngineProfile::PostgisLike);
    load_points(&mut engine, rows);
    if indexed {
        engine
            .execute("CREATE INDEX idx ON t USING GIST (g)")
            .unwrap();
        engine.execute("SET enable_seqscan = false").unwrap();
    }
    engine
}

fn range_join_query(i: usize) -> String {
    let d = (i % 40) + 1;
    format!("SELECT COUNT(*) FROM t a JOIN t b ON ST_DWithin(a.g, b.g, {d})")
}

fn main() {
    println!("== Distance-template throughput (range-join plans + KNN) ==\n");

    let mut samples = Vec::new();
    let mut speedups = Vec::new();

    for &(rows, queries) in ROWS_AXIS {
        // Plans equal by construction: spot-check before timing.
        let mut nested_engine = range_join_engine(rows, false);
        let mut prepared_engine = range_join_engine(rows, false);
        let mut indexed_engine = range_join_engine(rows, true);
        for i in 0..8 {
            let sql = range_join_query(i * 5);
            let nested = plan::with_distance_join_disabled(|| {
                nested_engine.execute(&sql).unwrap().count().unwrap()
            });
            assert_eq!(
                nested,
                prepared_engine.execute(&sql).unwrap().count().unwrap(),
                "prepared plan diverged on probe {i}"
            );
            assert_eq!(
                nested,
                indexed_engine.execute(&sql).unwrap().count().unwrap(),
                "index plan diverged on probe {i}"
            );
        }

        let nested = plan::with_distance_join_disabled(|| {
            bench(
                format!("range_join_dwithin_nested/{rows}"),
                rows,
                queries,
                |i| {
                    let count = nested_engine
                        .execute(&range_join_query(i))
                        .unwrap()
                        .count()
                        .unwrap();
                    assert!(count >= rows as i64, "every row is within any d of itself");
                },
            )
        });
        let prepared = bench(format!("range_join_dwithin/{rows}"), rows, queries, |i| {
            let count = prepared_engine
                .execute(&range_join_query(i))
                .unwrap()
                .count()
                .unwrap();
            assert!(count >= rows as i64);
        });
        let indexed = bench(
            format!("range_join_dwithin_indexed/{rows}"),
            rows,
            queries,
            |i| {
                let count = indexed_engine
                    .execute(&range_join_query(i))
                    .unwrap()
                    .count()
                    .unwrap();
                assert!(count >= rows as i64);
            },
        );
        speedups.push(format!(
            "    {{\"rows\": {rows}, \"prepared_vs_nested\": {:.2}, \"indexed_vs_nested\": {:.2}}}",
            prepared.queries_per_sec / nested.queries_per_sec,
            indexed.queries_per_sec / nested.queries_per_sec
        ));
        samples.extend([nested, prepared, indexed]);
    }

    let headline = samples
        .iter()
        .find(|s| s.name == "range_join_dwithin/64")
        .map(|s| s.queries_per_sec / SEED_BASELINE_QPS)
        .unwrap();

    let mut knn_seq = Engine::reference(EngineProfile::PostgisLike);
    load_points(&mut knn_seq, KNN_ROWS);

    let mut knn_indexed = Engine::reference(EngineProfile::PostgisLike);
    load_points(&mut knn_indexed, KNN_ROWS);
    knn_indexed
        .execute("CREATE INDEX idx ON t USING GIST (g)")
        .unwrap();
    knn_indexed.execute("SET enable_seqscan = false").unwrap();

    let knn_sql = |i: usize| {
        let origin = (i as i64 % 201) - 100;
        format!(
            "SELECT ST_AsText(a.g) FROM t a ORDER BY ST_Distance(a.g, 'POINT({origin} 0)'::geometry) LIMIT 4"
        )
    };

    samples.push(bench(
        "knn_order_by_seqscan".to_string(),
        KNN_ROWS,
        KNN_QUERIES,
        |i| {
            let rows = knn_seq.execute(&knn_sql(i)).unwrap().row_count();
            assert_eq!(rows, 4);
        },
    ));
    samples.push(bench(
        "knn_index_nearest_neighbour".to_string(),
        KNN_ROWS,
        KNN_QUERIES,
        |i| {
            let rows = knn_indexed.execute(&knn_sql(i)).unwrap().row_count();
            assert_eq!(rows, 4);
        },
    ));

    let widths = [34, 8, 10, 12, 14];
    spatter_bench::print_row(
        &["workload", "rows", "queries", "time (s)", "queries/sec"].map(String::from),
        &widths,
    );
    for sample in &samples {
        spatter_bench::print_row(
            &[
                sample.name.clone(),
                sample.rows.to_string(),
                sample.queries.to_string(),
                format!("{:.3}", sample.seconds),
                format!("{:.1}", sample.queries_per_sec),
            ],
            &widths,
        );
    }
    println!("\nrange_join_dwithin/64 vs seed nested-loop baseline ({SEED_BASELINE_QPS} q/s): {headline:.1}x");

    // Sanity: the two KNN plans agree on every probe (the Index-oracle
    // property the campaign relies on).
    for i in 0..40 {
        let sql = knn_sql(i);
        assert_eq!(
            knn_seq.execute(&sql).unwrap().rows,
            knn_indexed.execute(&sql).unwrap().rows,
            "KNN plans diverged on probe {i}"
        );
    }

    let entries: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"workload\": \"{}\", \"rows\": {}, \"queries\": {}, \"seconds\": {:.4}, \"queries_per_sec\": {:.2}}}",
                s.name, s.rows, s.queries, s.seconds, s.queries_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"distance_templates\",\n  \"config\": \"range-join plans on {{64,256,1024}} rows; KNN on {KNN_ROWS} rows x {KNN_QUERIES} queries\",\n  \"seed_baseline_queries_per_sec\": {SEED_BASELINE_QPS},\n  \"speedup_vs_seed_baseline_at_64_rows\": {headline:.2},\n  \"plan_speedups\": [\n{}\n  ],\n  \"samples\": [\n{}\n  ]\n}}\n",
        speedups.join(",\n"),
        entries.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_distance_templates.json"
    );
    std::fs::write(path, &json).expect("write BENCH_distance_templates.json");
    println!("\nwrote {path}");
}
