//! Throughput benchmark of the §7 distance-parameterised query templates:
//! range joins (`ST_DWithin` counts through the nested-loop join) versus KNN
//! queries, the latter both as a sequential `ORDER BY ST_Distance` sort and
//! through the index-accelerated nearest-neighbour path.
//!
//! Emits `BENCH_distance_templates.json` in the workspace root so the perf
//! trajectory of the new workload class is recorded per PR.

use spatter_core::rng::{RngExt, SeedableRng, StdRng};
use spatter_sdb::{Engine, EngineProfile};
use std::time::Instant;

const ROWS: usize = 64;
const QUERIES: usize = 400;

fn load_points(engine: &mut Engine) {
    engine.execute("CREATE TABLE t (g geometry)").unwrap();
    // Deterministic pseudo-random integer layout.
    let mut rng = StdRng::seed_from_u64(1234);
    for _ in 0..ROWS {
        let (x, y) = (
            rng.random_range(-100..=100i64),
            rng.random_range(-100..=100i64),
        );
        engine
            .execute(&format!("INSERT INTO t (g) VALUES ('POINT({x} {y})')"))
            .unwrap();
    }
}

struct Sample {
    name: &'static str,
    queries: usize,
    seconds: f64,
    queries_per_sec: f64,
}

fn bench<F: FnMut(usize)>(name: &'static str, mut run: F) -> Sample {
    let start = Instant::now();
    for i in 0..QUERIES {
        run(i);
    }
    let seconds = start.elapsed().as_secs_f64();
    Sample {
        name,
        queries: QUERIES,
        seconds,
        queries_per_sec: QUERIES as f64 / seconds.max(f64::EPSILON),
    }
}

fn main() {
    println!("== Distance-template throughput (range join vs KNN, {ROWS} rows) ==\n");

    let mut range_engine = Engine::reference(EngineProfile::PostgisLike);
    load_points(&mut range_engine);

    let mut knn_seq = Engine::reference(EngineProfile::PostgisLike);
    load_points(&mut knn_seq);

    let mut knn_indexed = Engine::reference(EngineProfile::PostgisLike);
    load_points(&mut knn_indexed);
    knn_indexed
        .execute("CREATE INDEX idx ON t USING GIST (g)")
        .unwrap();
    knn_indexed.execute("SET enable_seqscan = false").unwrap();

    let knn_sql = |i: usize| {
        let origin = (i as i64 % 201) - 100;
        format!(
            "SELECT ST_AsText(a.g) FROM t a ORDER BY ST_Distance(a.g, 'POINT({origin} 0)'::geometry) LIMIT 4"
        )
    };

    let samples = [
        bench("range_join_dwithin", |i| {
            let d = (i % 40) + 1;
            let count = range_engine
                .execute(&format!(
                    "SELECT COUNT(*) FROM t a JOIN t b ON ST_DWithin(a.g, b.g, {d})"
                ))
                .unwrap()
                .count()
                .unwrap();
            assert!(count >= ROWS as i64, "every row is within any d of itself");
        }),
        bench("knn_order_by_seqscan", |i| {
            let rows = knn_seq.execute(&knn_sql(i)).unwrap().row_count();
            assert_eq!(rows, 4);
        }),
        bench("knn_index_nearest_neighbour", |i| {
            let rows = knn_indexed.execute(&knn_sql(i)).unwrap().row_count();
            assert_eq!(rows, 4);
        }),
    ];

    let widths = [30, 10, 12, 14];
    spatter_bench::print_row(
        &["workload", "queries", "time (s)", "queries/sec"].map(String::from),
        &widths,
    );
    for sample in &samples {
        spatter_bench::print_row(
            &[
                sample.name.to_string(),
                sample.queries.to_string(),
                format!("{:.3}", sample.seconds),
                format!("{:.1}", sample.queries_per_sec),
            ],
            &widths,
        );
    }

    // Sanity: the two KNN plans agree on every probe (the Index-oracle
    // property the campaign relies on).
    for i in 0..40 {
        let sql = knn_sql(i);
        assert_eq!(
            knn_seq.execute(&sql).unwrap().rows,
            knn_indexed.execute(&sql).unwrap().rows,
            "KNN plans diverged on probe {i}"
        );
    }

    let entries: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"workload\": \"{}\", \"queries\": {}, \"seconds\": {:.4}, \"queries_per_sec\": {:.2}}}",
                s.name, s.queries, s.seconds, s.queries_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"distance_templates\",\n  \"config\": \"{ROWS} rows x {QUERIES} queries per workload\",\n  \"samples\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_distance_templates.json"
    );
    std::fs::write(path, &json).expect("write BENCH_distance_templates.json");
    println!("\nwrote {path}");
}
