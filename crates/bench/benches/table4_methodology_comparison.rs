//! Table 4: which of the 20 confirmed logic bugs each methodology detects.
//!
//! Mirrors §5.3: every confirmed logic fault's reduced bug-inducing scenario
//! is checked with AEI and with the baseline oracles (PostGIS vs MySQL,
//! PostGIS vs DuckDB Spatial, Index on/off, TLP).

use spatter_bench::{aei_detects, baseline_detects};
use spatter_core::scenarios::confirmed_logic_scenarios;
use spatter_sdb::faults::FaultySystem;
use spatter_sdb::FaultCatalog;
use std::collections::BTreeMap;

fn main() {
    println!("== Table 4: logic bug detection comparison ==\n");
    let scenarios = confirmed_logic_scenarios();
    let mut per_system: BTreeMap<FaultySystem, [usize; 5]> = BTreeMap::new();
    let mut overlooked = 0usize;

    for scenario in &scenarios {
        let info = FaultCatalog::info(scenario.fault);
        let aei = aei_detects(scenario);
        let pm = baseline_detects(scenario, "pg_vs_mysql");
        let pd = baseline_detects(scenario, "pg_vs_duckdb");
        let idx = baseline_detects(scenario, "index");
        let tlp = baseline_detects(scenario, "tlp");
        let entry = per_system.entry(info.system).or_insert([0; 5]);
        for (slot, hit) in entry.iter_mut().zip([aei, pm, pd, idx, tlp]) {
            if hit {
                *slot += 1;
            }
        }
        if !pm && !pd && !idx && !tlp {
            overlooked += 1;
        }
        println!(
            "  {:<45} AEI:{} P.vs.M:{} P.vs.D:{} Index:{} TLP:{}",
            format!("{:?}", scenario.fault),
            mark(aei),
            mark(pm),
            mark(pd),
            mark(idx),
            mark(tlp)
        );
    }

    println!();
    let widths = [12, 5, 9, 9, 7, 5];
    spatter_bench::print_row(
        &["System", "AEI", "P. vs M.", "P. vs D.", "Index", "TLP"].map(String::from),
        &widths,
    );
    let mut totals = [0usize; 5];
    for (system, counts) in &per_system {
        for (t, c) in totals.iter_mut().zip(counts.iter()) {
            *t += c;
        }
        spatter_bench::print_row(
            &[
                system.name().to_string(),
                counts[0].to_string(),
                counts[1].to_string(),
                counts[2].to_string(),
                counts[3].to_string(),
                counts[4].to_string(),
            ],
            &widths,
        );
    }
    spatter_bench::print_row(
        &[
            "Sum".to_string(),
            totals[0].to_string(),
            totals[1].to_string(),
            totals[2].to_string(),
            totals[3].to_string(),
            totals[4].to_string(),
        ],
        &widths,
    );
    println!("\nBugs overlooked by all baseline methods: {overlooked} (paper: 14)");
    println!("Paper reference sums: AEI 20, P.vs.M 4, P.vs.D 1, Index 2, TLP 1.");
}

fn mark(hit: bool) -> &'static str {
    if hit {
        "Y"
    } else {
        "-"
    }
}
