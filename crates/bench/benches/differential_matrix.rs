//! Differential matrix benchmark: what the N×N grid costs over the single
//! pair it generalises, and what the generic external-engine adapter costs
//! over the native stdio backend it wraps.
//!
//! Two axes:
//!
//! * **grid scaling** — a 2×2 reference/stock matrix (both ordered cells)
//!   at 1, 2 and 4 workers per cell, against the single reference-vs-stock
//!   campaign it subsumes. The grid orchestration itself should be free:
//!   the cost is cells × campaign.
//! * **adapter overhead** — the same fault-seeded campaign through the
//!   native `StdioBackend` and through `ExternalBackend` driving the same
//!   `spatter-sdb-server` binary via its self-test dialect. The adapter
//!   adds line parsing and ready-handshake logic; this row quantifies it.
//!
//! Emits `BENCH_differential_matrix.json` in the workspace root. The
//! adapter rows require the server binary (built by
//! `cargo build --workspace`); when it is absent the bench records the
//! in-process rows and says so.

use spatter_core::backend::BackendSpec;
use spatter_core::campaign::CampaignConfig;
use spatter_core::matrix::{DialectSpec, MatrixConfig, MatrixEntry, MatrixRunner};
use spatter_core::runner::CampaignRunner;
use spatter_sdb::{EngineProfile, FaultSet};
use std::path::PathBuf;
use std::time::Instant;

const ITERATIONS: usize = 10;
const QUERIES: usize = 12;
const SEED: u64 = 3;

fn base() -> CampaignConfig {
    CampaignConfig {
        queries_per_run: QUERIES,
        iterations: ITERATIONS,
        seed: SEED,
        ..CampaignConfig::default()
    }
}

fn reference() -> BackendSpec {
    BackendSpec::InProcess {
        profile: EngineProfile::PostgisLike,
        faults: FaultSet::none(),
    }
}

fn stock() -> BackendSpec {
    BackendSpec::InProcess {
        profile: EngineProfile::PostgisLike,
        faults: EngineProfile::PostgisLike.default_faults(),
    }
}

struct Sample {
    kind: &'static str,
    detail: String,
    iterations: usize,
    seconds: f64,
    iterations_per_sec: f64,
    findings: usize,
}

fn sample(
    kind: &'static str,
    detail: String,
    iterations: usize,
    seconds: f64,
    findings: usize,
) -> Sample {
    Sample {
        kind,
        detail,
        iterations,
        seconds,
        iterations_per_sec: iterations as f64 / seconds.max(f64::EPSILON),
        findings,
    }
}

/// The single reference-vs-stock campaign the 2×2 grid generalises: the
/// per-pair baseline cost.
fn run_single_pair() -> Sample {
    let config = CampaignConfig {
        backend: reference().build(),
        ..base()
    };
    let start = Instant::now();
    let report = CampaignRunner::new(config).run();
    sample(
        "single_pair",
        "reference campaign, AEI oracle".to_string(),
        report.iterations_run,
        start.elapsed().as_secs_f64(),
        report.findings.len(),
    )
}

fn run_grid(workers: usize) -> Sample {
    let entries = vec![
        MatrixEntry::new("reference", reference()),
        MatrixEntry::new("stock", stock()),
    ];
    let config = MatrixConfig::new(entries, base()).with_workers(workers);
    let start = Instant::now();
    let report = MatrixRunner::new(config).run();
    let iterations: usize = report.cells.iter().map(|c| c.iterations_run).sum();
    let findings: usize = report.cells.iter().map(|c| c.buckets.total()).sum();
    sample(
        "grid_2x2",
        format!("{workers} workers/cell"),
        iterations,
        start.elapsed().as_secs_f64(),
        findings,
    )
}

fn run_subprocess(kind: &'static str, spec: BackendSpec, detail: String) -> Sample {
    let config = CampaignConfig {
        backend: spec.build(),
        ..base()
    };
    let start = Instant::now();
    let report = CampaignRunner::new(config).run();
    sample(
        kind,
        detail,
        report.iterations_run,
        start.elapsed().as_secs_f64(),
        report.findings.len(),
    )
}

/// Locates the server binary next to this bench executable
/// (`target/<profile>/spatter-sdb-server`), if it has been built.
fn server_binary() -> Option<PathBuf> {
    let mut path = std::env::current_exe().ok()?;
    path.pop(); // the bench executable
    if path.ends_with("deps") {
        path.pop();
    }
    for name in ["spatter-sdb-server", "spatter-sdb-server.exe"] {
        let candidate = path.join(name);
        if candidate.is_file() {
            return Some(candidate);
        }
    }
    None
}

fn main() {
    println!("== Differential matrix: grid scaling and adapter overhead ==\n");

    let mut samples = vec![run_single_pair(), run_grid(1), run_grid(2), run_grid(4)];

    let server = server_binary();
    match &server {
        Some(path) => {
            let faults = EngineProfile::PostgisLike.default_faults();
            samples.push(run_subprocess(
                "stdio",
                BackendSpec::Stdio {
                    command: path.clone(),
                    profile: EngineProfile::PostgisLike,
                    faults: faults.clone(),
                    hard_crash: false,
                },
                "native stdio backend".to_string(),
            ));
            samples.push(run_subprocess(
                "external_adapter",
                BackendSpec::External {
                    dialect: DialectSpec::sdb_server(
                        path,
                        EngineProfile::PostgisLike,
                        faults,
                        false,
                    ),
                },
                "generic adapter, sdb-server dialect".to_string(),
            ));
        }
        None => println!(
            "note: spatter-sdb-server binary not found next to the bench \
             executable; adapter rows skipped (run `cargo build --workspace` first)\n"
        ),
    }

    let widths = [17, 36, 11, 10, 15, 9];
    spatter_bench::print_row(
        &[
            "kind",
            "detail",
            "iterations",
            "time (s)",
            "iterations/sec",
            "findings",
        ]
        .map(String::from),
        &widths,
    );
    for s in &samples {
        spatter_bench::print_row(
            &[
                s.kind.to_string(),
                s.detail.clone(),
                s.iterations.to_string(),
                format!("{:.3}", s.seconds),
                format!("{:.1}", s.iterations_per_sec),
                s.findings.to_string(),
            ],
            &widths,
        );
    }

    // Sanity: the grid's findings are worker-count invariant, and the
    // adapter flags exactly what the stdio backend flags.
    let grids: Vec<&Sample> = samples.iter().filter(|s| s.kind == "grid_2x2").collect();
    for grid in &grids[1..] {
        assert_eq!(
            grid.findings, grids[0].findings,
            "grid findings must not depend on the worker count"
        );
    }
    if server.is_some() {
        let by_kind = |kind: &str| samples.iter().find(|s| s.kind == kind).unwrap();
        assert_eq!(
            by_kind("external_adapter").findings,
            by_kind("stdio").findings,
            "the adapter must flag exactly what the stdio backend flags"
        );
    }

    let entries: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"kind\": \"{}\", \"detail\": \"{}\", \"iterations\": {}, \"seconds\": {:.4}, \"iterations_per_sec\": {:.2}, \"findings\": {}}}",
                s.kind, s.detail, s.iterations, s.seconds, s.iterations_per_sec, s.findings
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"differential_matrix\",\n  \"config\": \"{ITERATIONS} iterations x {QUERIES} queries, seed {SEED}, PostgisLike reference/stock\",\n  \"adapter_available\": {},\n  \"samples\": [\n{}\n  ]\n}}\n",
        server.is_some(),
        entries.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_differential_matrix.json"
    );
    std::fs::write(path, &json).expect("write BENCH_differential_matrix.json");
    println!("\nwrote {path}");
}
