//! Table 2: status of the reported bugs per SDBMS, plus how many of the
//! seeded faults the (scaled-down) Spatter campaign detects per system.

use spatter_bench::{default_campaign, run_campaign};
use spatter_core::generator::GenerationStrategy;
use spatter_sdb::faults::FaultySystem;
use spatter_sdb::{EngineProfile, FaultCatalog, FaultStatus};

fn main() {
    println!("== Table 2: status of the reported bugs in SDBMSs ==");
    println!("(registry reproduces the paper's report census; the last column shows");
    println!(" how many of those seeded faults a short Spatter campaign re-detects)\n");

    // A short campaign per profile; campaign findings are attributed to fault
    // ids, which map back to the systems of the table.
    let mut detected: Vec<spatter_sdb::FaultId> = Vec::new();
    for (profile, seconds) in [
        (EngineProfile::PostgisLike, 8),
        (EngineProfile::MysqlLike, 4),
        (EngineProfile::DuckdbSpatialLike, 4),
        (EngineProfile::SqlServerLike, 2),
    ] {
        let report = run_campaign(default_campaign(
            profile,
            GenerationStrategy::GeometryAware,
            seconds,
            11,
        ));
        detected.extend(report.unique_faults.iter().copied());
    }
    detected.sort();
    detected.dedup();

    let systems = [
        FaultySystem::Geos,
        FaultySystem::PostGis,
        FaultySystem::DuckDbSpatial,
        FaultySystem::MySql,
        FaultySystem::SqlServer,
    ];
    let widths = [16, 6, 10, 12, 10, 5, 19];
    spatter_bench::print_row(
        &[
            "SDBMS",
            "Fixed",
            "Confirmed",
            "Unconfirmed",
            "Duplicate",
            "Sum",
            "Detected by Spatter",
        ]
        .map(String::from),
        &widths,
    );
    let mut totals = [0usize; 5];
    for system in systems {
        let reports = FaultCatalog::for_system(system);
        let count = |status: FaultStatus| reports.iter().filter(|f| f.status == status).count();
        let row = [
            count(FaultStatus::Fixed),
            count(FaultStatus::Confirmed),
            count(FaultStatus::Unconfirmed),
            count(FaultStatus::Duplicate),
            reports.len(),
        ];
        for (t, v) in totals.iter_mut().zip(row.iter()) {
            *t += v;
        }
        let found = detected
            .iter()
            .filter(|id| FaultCatalog::info(**id).system == system)
            .count();
        spatter_bench::print_row(
            &[
                system.name().to_string(),
                row[0].to_string(),
                row[1].to_string(),
                row[2].to_string(),
                row[3].to_string(),
                row[4].to_string(),
                found.to_string(),
            ],
            &widths,
        );
    }
    spatter_bench::print_row(
        &[
            "Sum".to_string(),
            totals[0].to_string(),
            totals[1].to_string(),
            totals[2].to_string(),
            totals[3].to_string(),
            totals[4].to_string(),
            detected.len().to_string(),
        ],
        &widths,
    );
    println!(
        "\nPaper reference row sums: Fixed 18, Confirmed 12, Unconfirmed 4, Duplicate 1, Sum 35."
    );
}
