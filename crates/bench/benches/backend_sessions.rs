//! Backend session benchmark: what the `EngineBackend` abstraction costs and
//! what batched sessions buy.
//!
//! Two axes over the same deterministic AEI workload:
//!
//! * **batched vs per-query sessions** — one session pair per scenario
//!   reused for the whole query batch (the post-redesign execution model) vs
//!   a fresh engine pair per query (the pre-redesign cost model);
//! * **in-process vs stdio** — the same oracle over the in-process engine vs
//!   the `spatter-sdb-server` subprocess, quantifying the process-boundary
//!   overhead the abstraction makes optional.
//!
//! Emits `BENCH_backend_sessions.json` in the workspace root. The stdio rows
//! require the server binary (built by `cargo build --workspace`); when it
//! is absent the bench records the in-process rows and says so.

use spatter_core::backend::{EngineBackend, InProcessBackend, StdioBackend};
use spatter_core::campaign::run_aei_iteration;
use spatter_core::generator::{GenerationStrategy, GeneratorConfig, GeometryGenerator};
use spatter_core::oracles::{AeiOracle, Oracle};
use spatter_core::queries::{random_queries, QueryInstance};
use spatter_core::spec::DatabaseSpec;
use spatter_core::transform::{AffineStrategy, TransformPlan};
use spatter_sdb::EngineProfile;
use std::path::PathBuf;
use std::time::Instant;

const SCENARIOS: u64 = 6;
const QUERIES_PER_SCENARIO: usize = 20;

struct Scenario {
    spec: DatabaseSpec,
    queries: Vec<QueryInstance>,
    plan: TransformPlan,
}

fn scenarios() -> Vec<Scenario> {
    (0..SCENARIOS)
        .map(|seed| {
            let config = GeneratorConfig {
                num_geometries: 8,
                num_tables: 2,
                strategy: GenerationStrategy::GeometryAware,
                coordinate_range: 30,
                random_shape_probability: 0.5,
            };
            let spec = GeometryGenerator::new(config, seed).generate_database();
            let queries = random_queries(
                &spec,
                EngineProfile::PostgisLike,
                QUERIES_PER_SCENARIO,
                seed ^ 0x5eed,
            );
            let plan = TransformPlan::random(AffineStrategy::SimilarityInteger, seed ^ 0xaff1e);
            Scenario {
                spec,
                queries,
                plan,
            }
        })
        .collect()
}

struct Sample {
    backend: &'static str,
    mode: &'static str,
    queries: usize,
    seconds: f64,
    queries_per_sec: f64,
    flagged: usize,
}

/// One session pair per scenario, the whole batch through it.
fn run_batched(backend: &dyn EngineBackend, scenarios: &[Scenario], label: &'static str) -> Sample {
    let start = Instant::now();
    let mut flagged = 0;
    let mut queries = 0;
    for scenario in scenarios {
        let (outcomes, _) =
            run_aei_iteration(backend, &scenario.spec, &scenario.queries, &scenario.plan);
        queries += scenario.queries.len();
        flagged += outcomes
            .iter()
            .filter(|o| o.is_logic_bug() || o.is_crash())
            .count();
    }
    sample(
        label,
        "batched",
        queries,
        start.elapsed().as_secs_f64(),
        flagged,
    )
}

/// A fresh session pair per query: the pre-redesign cost model, kept as the
/// comparison baseline.
fn run_per_query(
    backend: &dyn EngineBackend,
    scenarios: &[Scenario],
    label: &'static str,
) -> Sample {
    let start = Instant::now();
    let mut flagged = 0;
    let mut queries = 0;
    for scenario in scenarios {
        let oracle = AeiOracle::new(scenario.plan.clone());
        for query in &scenario.queries {
            let outcomes = oracle.check(backend, &scenario.spec, std::slice::from_ref(query));
            queries += 1;
            flagged += outcomes
                .iter()
                .filter(|o| o.is_logic_bug() || o.is_crash())
                .count();
        }
    }
    sample(
        label,
        "per_query",
        queries,
        start.elapsed().as_secs_f64(),
        flagged,
    )
}

fn sample(
    backend: &'static str,
    mode: &'static str,
    queries: usize,
    seconds: f64,
    flagged: usize,
) -> Sample {
    Sample {
        backend,
        mode,
        queries,
        seconds,
        queries_per_sec: queries as f64 / seconds.max(f64::EPSILON),
        flagged,
    }
}

/// Locates the server binary next to this bench executable
/// (`target/<profile>/spatter-sdb-server`), if it has been built.
fn server_binary() -> Option<PathBuf> {
    let mut path = std::env::current_exe().ok()?;
    path.pop(); // the bench executable
    if path.ends_with("deps") {
        path.pop();
    }
    for name in ["spatter-sdb-server", "spatter-sdb-server.exe"] {
        let candidate = path.join(name);
        if candidate.is_file() {
            return Some(candidate);
        }
    }
    None
}

fn main() {
    println!("== Backend sessions: batched vs per-query, in-process vs stdio ==\n");
    let scenarios = scenarios();
    let stock = InProcessBackend::stock(EngineProfile::PostgisLike);

    let mut samples = vec![
        run_batched(&stock, &scenarios, "in_process"),
        run_per_query(&stock, &scenarios, "in_process"),
    ];

    let server = server_binary();
    match &server {
        Some(path) => {
            let stdio = StdioBackend::stock(path, EngineProfile::PostgisLike);
            samples.push(run_batched(&stdio, &scenarios, "stdio"));
            samples.push(run_per_query(&stdio, &scenarios, "stdio"));
        }
        None => println!(
            "note: spatter-sdb-server binary not found next to the bench \
             executable; stdio rows skipped (run `cargo build --workspace` first)\n"
        ),
    }

    let widths = [12, 11, 9, 10, 13, 9];
    spatter_bench::print_row(
        &[
            "backend",
            "mode",
            "queries",
            "time (s)",
            "queries/sec",
            "flagged",
        ]
        .map(String::from),
        &widths,
    );
    for s in &samples {
        spatter_bench::print_row(
            &[
                s.backend.to_string(),
                s.mode.to_string(),
                s.queries.to_string(),
                format!("{:.3}", s.seconds),
                format!("{:.1}", s.queries_per_sec),
                s.flagged.to_string(),
            ],
            &widths,
        );
    }

    // Sanity: every execution strategy flags exactly the same queries — the
    // backend/session choice is a pure performance axis.
    for s in &samples[1..] {
        assert_eq!(
            s.flagged, samples[0].flagged,
            "{}/{} flagged a different query set",
            s.backend, s.mode
        );
    }

    let entries: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"backend\": \"{}\", \"mode\": \"{}\", \"queries\": {}, \"seconds\": {:.4}, \"queries_per_sec\": {:.2}, \"flagged\": {}}}",
                s.backend, s.mode, s.queries, s.seconds, s.queries_per_sec, s.flagged
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"backend_sessions\",\n  \"config\": \"{SCENARIOS} scenarios x {QUERIES_PER_SCENARIO} AEI queries, PostgisLike stock\",\n  \"stdio_available\": {},\n  \"samples\": [\n{}\n  ]\n}}\n",
        server.is_some(),
        entries.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_backend_sessions.json"
    );
    std::fs::write(path, &json).expect("write BENCH_backend_sessions.json");
    println!("\nwrote {path}");
}
