//! Figure 7: average time spent in Spatter (generation) vs in the SDBMS
//! (statement execution) for N in {1, 10, 50, 100} geometries per run, 100
//! queries per run, averaged over repeats, for three engine profiles.

use spatter_core::campaign::{Campaign, CampaignConfig};
use spatter_core::generator::{GenerationStrategy, GeneratorConfig};
use spatter_core::transform::AffineStrategy;
use spatter_sdb::EngineProfile;
use std::time::Duration;

fn main() {
    println!("== Figure 7: run time distribution (generation vs engine execution) ==\n");
    let repeats = 2;
    for profile in [
        EngineProfile::PostgisLike,
        EngineProfile::MysqlLike,
        EngineProfile::DuckdbSpatialLike,
    ] {
        println!("-- {} --", profile.name());
        let widths = [6, 18, 18, 14];
        spatter_bench::print_row(
            &["N", "generation (ms)", "engine (ms)", "engine share"].map(String::from),
            &widths,
        );
        for n in [1usize, 10, 50, 100] {
            let mut generation = Duration::ZERO;
            let mut engine = Duration::ZERO;
            for repeat in 0..repeats {
                let config = CampaignConfig {
                    generator: GeneratorConfig {
                        num_geometries: n,
                        num_tables: 2,
                        strategy: GenerationStrategy::GeometryAware,
                        coordinate_range: 50,
                        random_shape_probability: 0.5,
                    },
                    queries_per_run: 100,
                    affine: AffineStrategy::GeneralInteger,
                    iterations: 1,
                    time_budget: None,
                    attribute_findings: false,
                    seed: 100 + repeat as u64,
                    ..CampaignConfig::stock(profile)
                };
                let report = Campaign::new(config).run();
                generation += report.generation_time;
                engine += report.engine_time;
            }
            let generation_ms = generation.as_secs_f64() * 1000.0 / repeats as f64;
            let engine_ms = engine.as_secs_f64() * 1000.0 / repeats as f64;
            let share = engine_ms / (engine_ms + generation_ms).max(f64::EPSILON) * 100.0;
            spatter_bench::print_row(
                &[
                    n.to_string(),
                    format!("{generation_ms:.3}"),
                    format!("{engine_ms:.3}"),
                    format!("{share:.1}%"),
                ],
                &widths,
            );
        }
        println!();
    }
    println!("Paper claim to compare against: statement execution inside the SDBMS dominates");
    println!("(>90% for N >= 10) and total runtime grows super-linearly with N.");
}
