//! Scaling benchmark of the distributed campaign subsystem: iterations per
//! second at 1/2/4 worker *processes* (each running its own thread pool)
//! against the in-process runner, with the supervisor's merge and decode
//! overhead broken out and findings determinism cross-checked between
//! every run.
//!
//! Emits `BENCH_distributed_campaign.json` in the workspace root so the
//! perf trajectory of the subsystem is recorded per PR. The distributed
//! rows require the `spatter-campaign-worker` binary (built by
//! `cargo build --workspace`); when it is absent the bench records the
//! in-process reference row and says so.

use spatter_core::campaign::CampaignConfig;
use spatter_core::dist::{DistConfig, DistRunner};
use spatter_core::runner::CampaignRunner;
use std::path::PathBuf;
use std::time::Instant;

const ITERATIONS: usize = 48;
const THREADS_PER_WORKER: usize = 2;

struct Sample {
    label: String,
    processes: usize,
    threads_per_worker: usize,
    seconds: f64,
    iters_per_sec: f64,
    merge_ms: f64,
    decode_ms: f64,
    leases: usize,
    findings: usize,
    unique_bugs: usize,
    fingerprint: String,
}

fn campaign() -> CampaignConfig {
    CampaignConfig {
        iterations: ITERATIONS,
        ..CampaignConfig::default()
    }
}

fn bench_in_process() -> Sample {
    let start = Instant::now();
    let report = CampaignRunner::new(campaign())
        .with_workers(THREADS_PER_WORKER)
        .run();
    let seconds = start.elapsed().as_secs_f64();
    Sample {
        label: "in-process".to_string(),
        processes: 1,
        threads_per_worker: THREADS_PER_WORKER,
        seconds,
        iters_per_sec: report.iterations_run as f64 / seconds.max(f64::EPSILON),
        merge_ms: 0.0,
        decode_ms: 0.0,
        leases: 0,
        findings: report.findings.len(),
        unique_bugs: report.unique_bug_count(),
        fingerprint: report.determinism_fingerprint(),
    }
}

fn bench_distributed(worker: &PathBuf, processes: usize) -> Sample {
    let dist = DistConfig::new(worker)
        .with_processes(processes)
        .with_threads_per_worker(THREADS_PER_WORKER);
    let start = Instant::now();
    let (report, stats) = DistRunner::new(campaign(), dist)
        .run_with_stats()
        .expect("distributed campaign");
    let seconds = start.elapsed().as_secs_f64();
    Sample {
        label: format!("{processes}-proc"),
        processes,
        threads_per_worker: THREADS_PER_WORKER,
        seconds,
        iters_per_sec: report.iterations_run as f64 / seconds.max(f64::EPSILON),
        merge_ms: stats.merge_time.as_secs_f64() * 1e3,
        decode_ms: stats.decode_time.as_secs_f64() * 1e3,
        leases: stats.leases_granted,
        findings: report.findings.len(),
        unique_bugs: report.unique_bug_count(),
        fingerprint: report.determinism_fingerprint(),
    }
}

/// Locates the worker binary next to this bench executable
/// (`target/<profile>/spatter-campaign-worker`), if it has been built.
fn worker_binary() -> Option<PathBuf> {
    let mut path = std::env::current_exe().ok()?;
    path.pop(); // the bench executable
    if path.ends_with("deps") {
        path.pop();
    }
    for name in ["spatter-campaign-worker", "spatter-campaign-worker.exe"] {
        let candidate = path.join(name);
        if candidate.is_file() {
            return Some(candidate);
        }
    }
    None
}

fn main() {
    println!("== Distributed campaign scaling (default campaign config x{ITERATIONS}) ==\n");

    let mut samples = vec![bench_in_process()];
    match worker_binary() {
        Some(worker) => {
            for processes in [1usize, 2, 4] {
                samples.push(bench_distributed(&worker, processes));
            }
        }
        None => println!(
            "note: spatter-campaign-worker binary not found next to the bench \
             executable; distributed rows skipped (run `cargo build --workspace` first)\n"
        ),
    }

    let widths = [12, 7, 9, 9, 11, 10, 10, 9];
    spatter_bench::print_row(
        &[
            "config",
            "procs",
            "threads",
            "time (s)",
            "iters/sec",
            "merge (ms)",
            "decode(ms)",
            "findings",
        ]
        .map(String::from),
        &widths,
    );
    for sample in &samples {
        spatter_bench::print_row(
            &[
                sample.label.clone(),
                sample.processes.to_string(),
                sample.threads_per_worker.to_string(),
                format!("{:.3}", sample.seconds),
                format!("{:.2}", sample.iters_per_sec),
                format!("{:.2}", sample.merge_ms),
                format!("{:.2}", sample.decode_ms),
                sample.findings.to_string(),
            ],
            &widths,
        );
    }

    // Determinism spot check: every split — and the in-process reference —
    // produced the byte-identical report fingerprint.
    let reference = &samples[0];
    for sample in &samples[1..] {
        assert_eq!(
            sample.fingerprint, reference.fingerprint,
            "distributed report diverged from in-process at {}",
            sample.label
        );
    }
    println!(
        "\ndeterminism: all {} runs share one fingerprint",
        samples.len()
    );

    let base = samples
        .iter()
        .find(|s| s.label == "1-proc")
        .map(|s| s.iters_per_sec)
        .unwrap_or(samples[0].iters_per_sec);
    let entries: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"config\": \"{}\", \"processes\": {}, \"threads_per_worker\": {}, \"iterations\": {ITERATIONS}, \"seconds\": {:.4}, \"iters_per_sec\": {:.3}, \"speedup_vs_1proc\": {:.3}, \"merge_ms\": {:.3}, \"decode_ms\": {:.3}, \"leases\": {}, \"findings\": {}, \"unique_bugs\": {}}}",
                s.label,
                s.processes,
                s.threads_per_worker,
                s.seconds,
                s.iters_per_sec,
                s.iters_per_sec / base.max(f64::EPSILON),
                s.merge_ms,
                s.decode_ms,
                s.leases,
                s.findings,
                s.unique_bugs
            )
        })
        .collect();
    // Speedup is bounded by the host: a small CI container reports ~1.0x at
    // every process count even though the supervisor itself adds only the
    // merge/decode overhead recorded above.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"distributed_campaign\",\n  \"config\": \"CampaignConfig::default() x{ITERATIONS} iterations, {THREADS_PER_WORKER} threads/worker\",\n  \"host_available_parallelism\": {cores},\n  \"samples\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_distributed_campaign.json"
    );
    std::fs::write(path, &json).expect("write BENCH_distributed_campaign.json");
    println!("wrote {path}");
}
