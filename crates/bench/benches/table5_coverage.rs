//! Table 5: probe coverage of the geometry library ("GEOS analog") and the
//! SQL engine under (a) Spatter alone, (b) the unit-test corpus, (c) both.

use spatter_bench::{default_campaign, run_campaign, run_unit_test_corpus};
use spatter_core::generator::GenerationStrategy;
use spatter_sdb::EngineProfile;

fn coverage_line(label: &str) {
    let (topo_hit, topo_total, topo_frac) = spatter_topo::coverage::topo_coverage();
    let (sdb_hit, sdb_total, sdb_frac) = spatter_sdb::coverage::sdb_coverage();
    println!(
        "  {label:<22} geometry library {topo_hit:>2}/{topo_total} ({:.1}%)   engine {sdb_hit:>2}/{sdb_total} ({:.1}%)",
        topo_frac * 100.0,
        sdb_frac * 100.0
    );
}

fn run_spatter() {
    let report = run_campaign(default_campaign(
        EngineProfile::PostgisLike,
        GenerationStrategy::GeometryAware,
        6,
        5,
    ));
    let _ = report;
}

fn main() {
    println!("== Table 5: probe coverage of the tested components ==\n");

    spatter_topo::coverage::reset();
    run_spatter();
    coverage_line("Spatter");

    spatter_topo::coverage::reset();
    run_unit_test_corpus();
    coverage_line("Unit tests");

    spatter_topo::coverage::reset();
    run_unit_test_corpus();
    run_spatter();
    coverage_line("Unit tests + Spatter");

    println!("\nPaper reference (gcov line coverage of PostGIS / GEOS): Spatter 15.8%/20.1%,");
    println!("unit tests 79.5%/54.8%, unit tests + Spatter 79.9%/55.2%. The probe-based");
    println!("measurement preserves the shape: Spatter alone is low, the unit corpus is");
    println!("high, and adding Spatter on top increases coverage slightly.");
}
