//! Table 3: classification of the confirmed and fixed bugs into logic and
//! crash bugs per SDBMS, plus the kinds of findings the campaign produced.

use spatter_bench::{default_campaign, run_campaign};
use spatter_core::campaign::FindingKind;
use spatter_core::generator::GenerationStrategy;
use spatter_sdb::faults::FaultySystem;
use spatter_sdb::{EngineProfile, FaultCatalog, FaultKind, FaultStatus};

fn main() {
    println!("== Table 3: logic vs crash classification of confirmed/fixed bugs ==\n");
    let systems = [
        FaultySystem::Geos,
        FaultySystem::PostGis,
        FaultySystem::MySql,
        FaultySystem::DuckDbSpatial,
    ];
    let widths = [16, 12, 16, 12, 16, 5];
    spatter_bench::print_row(
        &[
            "SDBMS",
            "Logic fixed",
            "Logic confirmed",
            "Crash fixed",
            "Crash confirmed",
            "Sum",
        ]
        .map(String::from),
        &widths,
    );
    let mut grand = 0usize;
    for system in systems {
        let confirmed: Vec<_> = FaultCatalog::for_system(system)
            .into_iter()
            .filter(|f| matches!(f.status, FaultStatus::Fixed | FaultStatus::Confirmed))
            .collect();
        let count = |kind: FaultKind, status: FaultStatus| {
            confirmed
                .iter()
                .filter(|f| f.kind == kind && f.status == status)
                .count()
        };
        let sum = confirmed.len();
        grand += sum;
        spatter_bench::print_row(
            &[
                system.name().to_string(),
                count(FaultKind::Logic, FaultStatus::Fixed).to_string(),
                count(FaultKind::Logic, FaultStatus::Confirmed).to_string(),
                count(FaultKind::Crash, FaultStatus::Fixed).to_string(),
                count(FaultKind::Crash, FaultStatus::Confirmed).to_string(),
                sum.to_string(),
            ],
            &widths,
        );
    }
    println!("Total confirmed/fixed: {grand} (paper: 30; 20 logic + 10 crash)\n");

    println!("Campaign findings by kind (scaled-down run on the PostGIS-like profile):");
    let report = run_campaign(default_campaign(
        EngineProfile::PostgisLike,
        GenerationStrategy::GeometryAware,
        8,
        23,
    ));
    println!(
        "  logic findings: {}, crash findings: {}, unique seeded faults detected: {}",
        report.findings_of_kind(FindingKind::Logic),
        report.findings_of_kind(FindingKind::Crash),
        report.unique_bug_count()
    );
}
