//! Scaling benchmark of the sharded campaign runner: iterations per second
//! at 1/2/4/8 workers on the default campaign configuration, with findings
//! determinism cross-checked between the single- and multi-worker runs.
//!
//! Emits `BENCH_parallel_campaign.json` in the workspace root so the perf
//! trajectory of the runner is recorded per PR.

use spatter_core::campaign::CampaignConfig;
use spatter_core::runner::CampaignRunner;
use std::time::Instant;

struct Sample {
    workers: usize,
    iterations: usize,
    seconds: f64,
    iters_per_sec: f64,
    findings: usize,
    unique_bugs: usize,
}

fn bench_workers(workers: usize, iterations: usize) -> Sample {
    let config = CampaignConfig {
        iterations,
        ..CampaignConfig::default()
    };
    let start = Instant::now();
    let report = CampaignRunner::new(config).with_workers(workers).run();
    let seconds = start.elapsed().as_secs_f64();
    Sample {
        workers,
        iterations: report.iterations_run,
        seconds,
        iters_per_sec: report.iterations_run as f64 / seconds.max(f64::EPSILON),
        findings: report.findings.len(),
        unique_bugs: report.unique_bug_count(),
    }
}

fn main() {
    println!("== Parallel campaign scaling (default campaign config) ==\n");
    let iterations = 64;
    let widths = [8, 12, 10, 12, 10, 12];
    spatter_bench::print_row(
        &[
            "workers",
            "iterations",
            "time (s)",
            "iters/sec",
            "findings",
            "speedup",
        ]
        .map(String::from),
        &widths,
    );

    let samples: Vec<Sample> = [1usize, 2, 4, 8]
        .iter()
        .map(|&w| bench_workers(w, iterations))
        .collect();
    let base = samples[0].iters_per_sec;

    for sample in &samples {
        spatter_bench::print_row(
            &[
                sample.workers.to_string(),
                sample.iterations.to_string(),
                format!("{:.3}", sample.seconds),
                format!("{:.2}", sample.iters_per_sec),
                sample.findings.to_string(),
                format!("{:.2}x", sample.iters_per_sec / base.max(f64::EPSILON)),
            ],
            &widths,
        );
    }

    // Determinism spot check: every worker count found exactly the same bugs.
    let first = &samples[0];
    for sample in &samples[1..] {
        assert_eq!(
            (sample.findings, sample.unique_bugs),
            (first.findings, first.unique_bugs),
            "findings diverged between 1 and {} workers",
            sample.workers
        );
    }

    let entries: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"workers\": {}, \"iterations\": {}, \"seconds\": {:.4}, \"iters_per_sec\": {:.3}, \"speedup\": {:.3}, \"findings\": {}, \"unique_bugs\": {}}}",
                s.workers,
                s.iterations,
                s.seconds,
                s.iters_per_sec,
                s.iters_per_sec / base.max(f64::EPSILON),
                s.findings,
                s.unique_bugs
            )
        })
        .collect();
    // Speedup is bounded by the host: a 1-core CI container reports ~1.0x at
    // every worker count even though the runner itself is contention-free.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"parallel_campaign\",\n  \"config\": \"CampaignConfig::default() x{iterations} iterations\",\n  \"host_available_parallelism\": {cores},\n  \"samples\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_parallel_campaign.json"
    );
    std::fs::write(path, &json).expect("write BENCH_parallel_campaign.json");
    println!("\nwrote {path}");
}
