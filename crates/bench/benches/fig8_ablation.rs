//! Figure 8: ablation of the geometry-aware generator (GAG) against the
//! random-shape-only generator (RSG): unique bugs over time and coverage over
//! time on the PostGIS-like profile.

use spatter_bench::{default_campaign, run_campaign};
use spatter_core::generator::GenerationStrategy;
use spatter_sdb::EngineProfile;

fn main() {
    println!("== Figure 8: geometry-aware generator (GAG) vs random-shape generator (RSG) ==\n");
    let seconds = 10;
    for (label, strategy) in [
        ("GAG", GenerationStrategy::GeometryAware),
        ("RSG", GenerationStrategy::RandomShapeOnly),
    ] {
        spatter_topo::coverage::reset();
        let report = run_campaign(default_campaign(
            EngineProfile::PostgisLike,
            strategy,
            seconds,
            77,
        ));
        let (_, _, topo_frac) = spatter_topo::coverage::topo_coverage();
        let (_, _, sdb_frac) = spatter_sdb::coverage::sdb_coverage();
        println!(
            "{label}: iterations {:>4}, findings {:>4}, unique bugs {:>2}, geometry-library coverage {:.1}%, engine coverage {:.1}%",
            report.iterations_run,
            report.findings.len(),
            report.unique_bug_count(),
            topo_frac * 100.0,
            sdb_frac * 100.0
        );
        println!("  unique-bug timeline (seconds -> count):");
        for (elapsed, count) in &report.unique_bug_timeline {
            println!("    {:>6.2}s -> {count}", elapsed.as_secs_f64());
        }
        println!();
    }
    println!("Paper claim to compare against: within the same time budget GAG finds more");
    println!("unique bugs and reaches higher coverage than RSG (Figure 8a-8c).");
}
