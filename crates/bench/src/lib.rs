//! Shared helpers for the benchmark harnesses that regenerate the paper's
//! tables and figures (`cargo bench -p spatter-bench`).
//!
//! Each `[[bench]]` target corresponds to one table or figure of the
//! evaluation section; see DESIGN.md for the experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured results.

use spatter_core::backend::{EngineBackend, InProcessBackend};
use spatter_core::campaign::{Campaign, CampaignConfig};
use spatter_core::generator::{GenerationStrategy, GeneratorConfig};
use spatter_core::oracles::{AeiOracle, DifferentialOracle, IndexOracle, Oracle, TlpOracle};
use spatter_core::scenarios::TriggerScenario;
use spatter_core::transform::{AffineStrategy, TransformPlan};
use spatter_geom::{AffineMatrix, AffineTransform};
use spatter_sdb::faults::FaultySystem;
use spatter_sdb::{Engine, EngineProfile, FaultCatalog, FaultId, FaultSet};
use std::time::Duration;

/// The engine profile a fault's trigger scenario must run on.
pub fn profile_for_fault(fault: FaultId) -> EngineProfile {
    match FaultCatalog::info(fault).system {
        FaultySystem::Geos | FaultySystem::PostGis => EngineProfile::PostgisLike,
        FaultySystem::DuckDbSpatial => EngineProfile::DuckdbSpatialLike,
        FaultySystem::MySql => EngineProfile::MysqlLike,
        FaultySystem::SqlServer => EngineProfile::SqlServerLike,
    }
}

/// A campaign configuration mirroring the paper's short runs ("Spatter ran
/// for 10 minutes to 1 hour"), scaled down to seconds so `cargo bench`
/// completes quickly. Increase `time_budget` to reproduce longer campaigns.
pub fn default_campaign(
    profile: EngineProfile,
    strategy: GenerationStrategy,
    seconds: u64,
    seed: u64,
) -> CampaignConfig {
    CampaignConfig {
        generator: GeneratorConfig {
            num_geometries: 10,
            num_tables: 2,
            strategy,
            coordinate_range: 50,
            random_shape_probability: 0.5,
        },
        queries_per_run: 25,
        affine: AffineStrategy::GeneralInteger,
        iterations: usize::MAX / 2,
        time_budget: Some(Duration::from_secs(seconds)),
        attribute_findings: true,
        seed,
        ..CampaignConfig::stock(profile)
    }
}

/// Runs a time-boxed campaign and returns its report.
pub fn run_campaign(config: CampaignConfig) -> spatter_core::campaign::CampaignReport {
    Campaign::new(config).run()
}

/// Checks whether the AEI methodology detects a fault on its trigger
/// scenario, trying canonicalization-only, several random integer matrices,
/// a fixed positive translation (for sign-sensitive faults) and — for faults
/// living behind the index or the RANGE functions — the corresponding
/// specialised checks.
pub fn aei_detects(scenario: &TriggerScenario) -> bool {
    let fault = scenario.fault;
    let profile = profile_for_fault(fault);
    let faults = FaultSet::with([fault]);

    let backend = InProcessBackend::new(profile, faults.clone());
    let mut plans = vec![TransformPlan::canonicalization_only()];
    for seed in 0..30u64 {
        plans.push(TransformPlan::random(AffineStrategy::GeneralInteger, seed));
    }
    plans.push(TransformPlan {
        canonicalize: true,
        transform: AffineTransform::new(AffineMatrix::translation(500.0, 500.0))
            .expect("invertible"),
        uniform_scale: Some(1.0),
    });
    plans.push(TransformPlan {
        canonicalize: true,
        transform: AffineTransform::new(AffineMatrix::scaling(20.0, 20.0)).expect("invertible"),
        uniform_scale: Some(20.0),
    });

    let queries = std::slice::from_ref(&scenario.query);
    for plan in &plans {
        let oracle = AeiOracle::new(plan.clone());
        if oracle
            .check(&backend, &scenario.spec, queries)
            .iter()
            .any(|o| o.is_logic_bug())
        {
            return true;
        }
    }

    // Index-resident fault: the AEI comparison must run over indexed tables
    // (Spatter's generated databases carry GiST indexes when testing the
    // index path).
    if fault == FaultId::PostgisGistIndexDropsRows {
        return aei_detects_with_indexes(scenario, profile, &faults);
    }
    // RANGE-function faults: AEI over the §7 distance-parameterised
    // templates (range joins / KNN) under similarity transformations.
    if matches!(
        fault,
        FaultId::PostgisDFullyWithinSmallCoords | FaultId::GeosEmptyDistanceRecursion
    ) {
        return aei_detects_distance_template(&backend, fault);
    }
    false
}

fn aei_detects_with_indexes(
    scenario: &TriggerScenario,
    profile: EngineProfile,
    faults: &FaultSet,
) -> bool {
    let plan = TransformPlan {
        canonicalize: true,
        transform: AffineTransform::new(AffineMatrix::translation(500.0, 500.0))
            .expect("invertible"),
        uniform_scale: Some(1.0),
    };
    let transformed = plan.apply(&scenario.spec);
    let count_of = |spec: &spatter_core::spec::DatabaseSpec| -> Option<i64> {
        let mut engine = Engine::with_faults(profile, faults.clone());
        for statement in spec.to_sql_with_indexes() {
            engine.execute(&statement).ok()?;
        }
        engine.execute("SET enable_seqscan = false").ok()?;
        engine.execute(&scenario.query.to_sql()).ok()?.count()
    };
    match (count_of(&scenario.spec), count_of(&transformed)) {
        (Some(a), Some(b)) => a != b,
        _ => false,
    }
}

fn aei_detects_distance_template(backend: &dyn EngineBackend, fault: FaultId) -> bool {
    let Some(scenario) = spatter_core::scenarios::distance_template_scenarios()
        .into_iter()
        .find(|s| s.fault == fault)
    else {
        return false;
    };
    let scale = 20.0;
    let plan = TransformPlan {
        canonicalize: true,
        transform: AffineTransform::new(AffineMatrix::scaling(scale, scale)).expect("invertible"),
        uniform_scale: Some(scale),
    };
    AeiOracle::new(plan)
        .check(
            backend,
            &scenario.spec,
            std::slice::from_ref(&scenario.query),
        )
        .iter()
        .any(|o| o.is_logic_bug())
}

/// Whether a baseline oracle detects a fault on its trigger scenario.
pub fn baseline_detects(scenario: &TriggerScenario, oracle_name: &str) -> bool {
    let fault = scenario.fault;
    let profile = profile_for_fault(fault);
    let backend = InProcessBackend::new(profile, FaultSet::with([fault]));
    let queries = std::slice::from_ref(&scenario.query);
    let outcomes = match oracle_name {
        "pg_vs_mysql" => {
            let other = if profile == EngineProfile::MysqlLike {
                EngineProfile::PostgisLike
            } else {
                EngineProfile::MysqlLike
            };
            DifferentialOracle::against_stock(other).check(&backend, &scenario.spec, queries)
        }
        "pg_vs_duckdb" => {
            let other = if profile == EngineProfile::DuckdbSpatialLike {
                EngineProfile::PostgisLike
            } else {
                EngineProfile::DuckdbSpatialLike
            };
            DifferentialOracle::against_stock(other).check(&backend, &scenario.spec, queries)
        }
        "index" => IndexOracle.check(&backend, &scenario.spec, queries),
        "tlp" => TlpOracle.check(&backend, &scenario.spec, queries),
        other => panic!("unknown oracle {other}"),
    };
    outcomes.iter().any(|o| o.is_logic_bug())
}

/// A "unit test corpus": representative statements mirroring the regression
/// suites the paper replays before measuring Spatter's additional coverage
/// (Table 5). It exercises every listing plus the breadth of the function
/// surface.
pub fn run_unit_test_corpus() {
    let mut engine = Engine::reference(EngineProfile::PostgisLike);
    let scripts = [
        "CREATE TABLE t1 (g geometry); CREATE TABLE t2 (g geometry);
         INSERT INTO t1 (g) VALUES ('LINESTRING(0 1,2 0)');
         INSERT INTO t2 (g) VALUES ('POINT(0.2 0.9)');
         SELECT COUNT(*) FROM t1 JOIN t2 ON ST_Covers(t1.g,t2.g)",
        "SELECT ST_Distance('MULTIPOINT((1 0),(0 0))'::geometry, 'MULTIPOINT((-2 0),EMPTY)'::geometry)",
        "SELECT ST_Within('POINT(0 0)'::geometry, 'GEOMETRYCOLLECTION(POINT(0 0),LINESTRING(0 0,1 0))'::geometry)",
        "SELECT ST_DFullyWithin('LINESTRING(0 0,0 1,1 0,0 0)'::geometry,'POLYGON((0 0,0 1,1 0,0 0))'::geometry,100)",
        "SELECT ST_Relate('POLYGON((0 0,4 0,4 4,0 4,0 0))'::geometry, 'LINESTRING(-2 0,6 0)'::geometry)",
        "SELECT ST_Area('POLYGON((0 0,10 0,10 10,0 10,0 0))'::geometry), ST_Length('LINESTRING(0 0,3 4)'::geometry)",
        "SELECT ST_AsText(ST_Boundary('POLYGON((0 0,4 0,4 4,0 4,0 0))'::geometry))",
        "SELECT ST_AsText(ST_ConvexHull('MULTIPOINT((0 0),(4 0),(4 4),(0 4),(2 2))'::geometry))",
        "SELECT ST_AsText(ST_Centroid('POLYGON((0 0,4 0,4 4,0 4,0 0))'::geometry))",
        "SELECT ST_AsText(ST_Envelope('LINESTRING(1 1,3 4)'::geometry))",
        "SELECT ST_IsValid('POLYGON((0 0,1 1,0 1,1 0,0 0))'::geometry)",
        "SELECT ST_Crosses('LINESTRING(-1 2,5 2)'::geometry, 'POLYGON((0 0,4 0,4 4,0 4,0 0))'::geometry)",
        "SELECT ST_Touches('POLYGON((0 0,4 0,4 4,0 4,0 0))'::geometry, 'POLYGON((4 0,8 0,8 4,4 4,4 0))'::geometry)",
        "SELECT ST_Equals('LINESTRING(0 0,4 0)'::geometry, 'LINESTRING(4 0,2 0,0 0)'::geometry)",
        "SELECT ST_AsText(ST_GeometryN('MULTIPOINT((1 1),(2 2))'::geometry, 2))",
        "SELECT ST_AsText(ST_CollectionExtract('GEOMETRYCOLLECTION(POINT(0 0),LINESTRING(0 0,1 1))'::geometry, 1))",
        "SELECT ST_AsText(ST_ForcePolygonCW('POLYGON((0 0,4 0,4 4,0 4,0 0))'::geometry))",
        "SELECT ST_AsText(ST_Reverse('LINESTRING(0 0,1 1,2 2)'::geometry))",
        "SELECT ST_DWithin('POINT(0 0)'::geometry, 'POINT(3 4)'::geometry, 5)",
        "SELECT ST_AsText(ST_PointN('LINESTRING(0 0,1 1,2 2)'::geometry, 2))",
        // The §7 distance-parameterised templates: range joins and KNN.
        "CREATE TABLE k (g geometry);
         INSERT INTO k (g) VALUES ('POINT(1 1)'), ('POINT(5 5)'), ('POINT EMPTY');
         SELECT COUNT(*) FROM k a JOIN k b ON ST_DWithin(a.g, b.g, 10);
         SELECT ST_AsText(a.g) FROM k a ORDER BY ST_Distance(a.g, 'POINT(0 0)'::geometry) LIMIT 2",
    ];
    for script in scripts {
        let _ = engine.execute_script(script);
    }
    // Listing 8 needs its own engine because it toggles session settings.
    let mut engine = Engine::reference(EngineProfile::PostgisLike);
    let _ = engine.execute_script(
        "CREATE TABLE t (id int, geom geometry);
         INSERT INTO t (id, geom) VALUES (1, 'POINT EMPTY');
         CREATE INDEX idx ON t USING GIST (geom);
         SET enable_seqscan = false;
         SELECT COUNT(*) FROM t WHERE geom ~= 'POINT EMPTY'::geometry",
    );
}

/// Pretty-prints a table row with left-aligned, fixed-width columns.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths.iter()) {
        line.push_str(&format!("{cell:<width$}  "));
    }
    println!("{}", line.trim_end());
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatter_core::scenarios::confirmed_logic_scenarios;

    #[test]
    fn profile_mapping_follows_the_fault_registry() {
        assert_eq!(
            profile_for_fault(FaultId::GeosCoversPrecisionLoss),
            EngineProfile::PostgisLike
        );
        assert_eq!(
            profile_for_fault(FaultId::MysqlOverlapsAxisOrder),
            EngineProfile::MysqlLike
        );
    }

    #[test]
    fn unit_test_corpus_runs_cleanly() {
        run_unit_test_corpus();
    }

    #[test]
    fn aei_detects_the_distance_template_faults() {
        for scenario in spatter_core::scenarios::distance_template_scenarios() {
            assert!(
                aei_detects(&spatter_core::scenarios::scenario_for(scenario.fault).unwrap()),
                "AEI must detect {:?} via its distance template",
                scenario.fault
            );
        }
    }

    #[test]
    fn aei_detects_the_flagship_listing_faults() {
        for scenario in confirmed_logic_scenarios() {
            if matches!(
                scenario.fault,
                FaultId::GeosCoversPrecisionLoss
                    | FaultId::GeosMixedBoundaryLastOneWins
                    | FaultId::GeosPreparedDuplicateDropped
                    | FaultId::MysqlCrossesLargeCoordinates
            ) {
                assert!(
                    aei_detects(&scenario),
                    "AEI must detect {:?}",
                    scenario.fault
                );
            }
        }
    }
}
