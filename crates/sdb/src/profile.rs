//! Engine profiles modelling the four tested SDBMSs (§5, "Tested SDBMSs").
//!
//! A profile determines (1) which spatial functions exist, (2) how strictly
//! geometries are validated — the sources of the *expected discrepancies*
//! that defeat differential testing (§1, §5.2) — and (3) which seeded faults
//! the stock engine of that profile carries.

use crate::faults::{FaultCatalog, FaultId, FaultKind, FaultSet, FaultStatus, FaultySystem};

/// The four engine profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineProfile {
    /// Models PostGIS (built on the shared GEOS-analog library).
    PostgisLike,
    /// Models MySQL's built-in GIS (its own geometry code).
    MysqlLike,
    /// Models DuckDB Spatial (also built on the GEOS analog).
    DuckdbSpatialLike,
    /// Models SQL Server's spatial types.
    SqlServerLike,
}

impl EngineProfile {
    /// All four profiles.
    pub const ALL: [EngineProfile; 4] = [
        EngineProfile::PostgisLike,
        EngineProfile::MysqlLike,
        EngineProfile::DuckdbSpatialLike,
        EngineProfile::SqlServerLike,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            EngineProfile::PostgisLike => "postgis_like",
            EngineProfile::MysqlLike => "mysql_like",
            EngineProfile::DuckdbSpatialLike => "duckdb_spatial_like",
            EngineProfile::SqlServerLike => "sqlserver_like",
        }
    }

    /// Parses a profile from its [`EngineProfile::name`] form (used by the
    /// `spatter-sdb-server` command line).
    pub fn from_name(name: &str) -> Option<EngineProfile> {
        EngineProfile::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Whether the profile is built on the shared GEOS-analog library and
    /// therefore inherits its faults (PostGIS and DuckDB Spatial share GEOS
    /// in the paper; MySQL and SQL Server have their own implementations).
    pub fn uses_shared_library(&self) -> bool {
        matches!(
            self,
            EngineProfile::PostgisLike | EngineProfile::DuckdbSpatialLike
        )
    }

    /// Whether the profile supports a given `ST_*` function. This encodes the
    /// "solely implemented in one SDBMS" situations the paper highlights:
    /// `ST_Covers` / `ST_CoveredBy` / `ST_DFullyWithin` exist only in the
    /// PostGIS-like and DuckDB-like profiles, `ST_DumpRings` only in
    /// PostGIS-like, while the OGC core is universal.
    pub fn supports_function(&self, name: &str) -> bool {
        let upper = name.to_ascii_uppercase();
        let core = [
            "ST_INTERSECTS",
            "ST_DISJOINT",
            "ST_CONTAINS",
            "ST_WITHIN",
            "ST_CROSSES",
            "ST_OVERLAPS",
            "ST_TOUCHES",
            "ST_EQUALS",
            "ST_RELATE",
            "ST_DISTANCE",
            "ST_DWITHIN",
            "ST_GEOMFROMTEXT",
            "ST_ASTEXT",
            "ST_ISVALID",
            "ST_DIMENSION",
            "ST_NUMGEOMETRIES",
            "ST_GEOMETRYN",
            "ST_ENVELOPE",
            "ST_CONVEXHULL",
            "ST_BOUNDARY",
            "ST_CENTROID",
            "ST_AREA",
            "ST_LENGTH",
            "ST_ISEMPTY",
            "ST_COLLECT",
            "ST_REVERSE",
            "ST_POINTN",
            "ST_SWAPXY",
            "ST_GEOMETRYTYPE",
        ];
        if core.contains(&upper.as_str()) {
            return true;
        }
        match upper.as_str() {
            // PostGIS / DuckDB Spatial extensions (shared GEOS heritage).
            "ST_COVERS" | "ST_COVEREDBY" => self.uses_shared_library(),
            // PostGIS-only extensions.
            "ST_DFULLYWITHIN"
            | "ST_DUMPRINGS"
            | "ST_SETPOINT"
            | "ST_FORCEPOLYGONCW"
            | "ST_COLLECTIONEXTRACT"
            | "ST_POLYGONIZE" => {
                matches!(self, EngineProfile::PostgisLike)
            }
            _ => false,
        }
    }

    /// Whether the profile rejects semantically invalid geometries when they
    /// are used in predicates. PostGIS-like and DuckDB-like are strict (they
    /// raise errors for, e.g., collections whose elements intersect,
    /// Listing 4); MySQL-like and SQL-Server-like accept them.
    pub fn strict_validation(&self) -> bool {
        self.uses_shared_library()
    }

    /// The seeded faults a stock engine of this profile carries: every
    /// confirmed/fixed/unconfirmed fault filed against the profile's own
    /// engine, plus the shared-library faults for profiles built on the GEOS
    /// analog. Duplicate reports do not add faults (same root cause).
    pub fn default_faults(&self) -> FaultSet {
        let mut set = FaultSet::none();
        for info in FaultCatalog::all() {
            if info.status == FaultStatus::Duplicate {
                continue;
            }
            let applies = match info.system {
                FaultySystem::Geos => self.uses_shared_library(),
                FaultySystem::PostGis => *self == EngineProfile::PostgisLike,
                FaultySystem::DuckDbSpatial => *self == EngineProfile::DuckdbSpatialLike,
                FaultySystem::MySql => *self == EngineProfile::MysqlLike,
                FaultySystem::SqlServer => *self == EngineProfile::SqlServerLike,
            };
            if applies {
                set.enable(info.id);
            }
        }
        set
    }

    /// The subset of [`EngineProfile::default_faults`] that are logic faults.
    pub fn default_logic_faults(&self) -> Vec<FaultId> {
        self.default_faults()
            .iter()
            .filter(|id| FaultCatalog::info(*id).kind == FaultKind::Logic)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_is_a_shared_library_extension() {
        assert!(EngineProfile::PostgisLike.supports_function("ST_Covers"));
        assert!(EngineProfile::DuckdbSpatialLike.supports_function("st_covers"));
        assert!(!EngineProfile::MysqlLike.supports_function("ST_Covers"));
        assert!(!EngineProfile::SqlServerLike.supports_function("ST_Covers"));
    }

    #[test]
    fn dfullywithin_is_postgis_only() {
        assert!(EngineProfile::PostgisLike.supports_function("ST_DFullyWithin"));
        assert!(!EngineProfile::DuckdbSpatialLike.supports_function("ST_DFullyWithin"));
        assert!(!EngineProfile::MysqlLike.supports_function("ST_DFullyWithin"));
    }

    #[test]
    fn core_functions_are_universal() {
        for profile in EngineProfile::ALL {
            assert!(
                profile.supports_function("ST_Intersects"),
                "{}",
                profile.name()
            );
            assert!(
                profile.supports_function("ST_Crosses"),
                "{}",
                profile.name()
            );
            assert!(
                !profile.supports_function("ST_Buffer"),
                "{}",
                profile.name()
            );
        }
    }

    #[test]
    fn validation_strictness_matches_paper() {
        assert!(EngineProfile::PostgisLike.strict_validation());
        assert!(EngineProfile::DuckdbSpatialLike.strict_validation());
        assert!(!EngineProfile::MysqlLike.strict_validation());
        assert!(!EngineProfile::SqlServerLike.strict_validation());
    }

    #[test]
    fn default_fault_sets_partition_by_system() {
        let postgis = EngineProfile::PostgisLike.default_faults();
        assert!(postgis.is_active(FaultId::GeosCoversPrecisionLoss));
        assert!(postgis.is_active(FaultId::PostgisGistIndexDropsRows));
        assert!(!postgis.is_active(FaultId::MysqlOverlapsAxisOrder));

        let duckdb = EngineProfile::DuckdbSpatialLike.default_faults();
        assert!(duckdb.is_active(FaultId::GeosCoversPrecisionLoss));
        assert!(duckdb.is_active(FaultId::DuckdbCrashGeometryNZero));
        assert!(!duckdb.is_active(FaultId::PostgisGistIndexDropsRows));

        let mysql = EngineProfile::MysqlLike.default_faults();
        assert!(mysql.is_active(FaultId::MysqlCrossesLargeCoordinates));
        assert!(!mysql.is_active(FaultId::GeosCoversPrecisionLoss));

        let sqlserver = EngineProfile::SqlServerLike.default_faults();
        assert!(sqlserver.is_active(FaultId::SqlServerUnconfirmedWithinCollection));
        assert_eq!(sqlserver.len(), 2);
    }

    #[test]
    fn duplicate_reports_do_not_add_faults() {
        let postgis = EngineProfile::PostgisLike.default_faults();
        assert!(!postgis.is_active(FaultId::PostgisDuplicateCoversPrecision));
    }

    #[test]
    fn logic_fault_listing() {
        let mysql_logic = EngineProfile::MysqlLike.default_logic_faults();
        assert_eq!(mysql_logic.len(), 4);
    }
}
