//! Recursive-descent parser for the supported SQL subset.

use crate::ast::{
    BinaryOp, ColumnType, Expr, OrderByClause, SelectItem, SelectStatement, Statement, TableRef,
};
use crate::error::{SdbError, SdbResult};
use crate::lexer::{tokenize, Token};
use crate::value::Value;

/// Parses a single SQL statement (an optional trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> SdbResult<Statement> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let stmt = parser.parse_statement()?;
    parser.consume_if(&Token::Semicolon);
    if !parser.at_end() {
        return Err(SdbError::Parse(format!(
            "unexpected trailing tokens starting at {:?}",
            parser.peek()
        )));
    }
    Ok(stmt)
}

/// Parses a script of semicolon-separated statements.
pub fn parse_script(sql: &str) -> SdbResult<Vec<Statement>> {
    let mut statements = Vec::new();
    for piece in split_statements(sql) {
        let trimmed = piece.trim();
        if trimmed.is_empty() {
            continue;
        }
        statements.push(parse_statement(trimmed)?);
    }
    Ok(statements)
}

/// Splits on semicolons that are not inside string literals.
fn split_statements(sql: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    for c in sql.chars() {
        match c {
            '\'' => {
                in_string = !in_string;
                current.push(c);
            }
            ';' if !in_string => {
                out.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn consume_if(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &Token) -> SdbResult<()> {
        if self.consume_if(token) {
            Ok(())
        } else {
            Err(SdbError::Parse(format!(
                "expected {token:?}, found {:?}",
                self.peek()
            )))
        }
    }

    /// Consumes the next token if it is the given keyword (case-insensitive).
    fn consume_keyword(&mut self, keyword: &str) -> bool {
        if let Some(Token::Ident(word)) = self.peek() {
            if word.eq_ignore_ascii_case(keyword) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, keyword: &str) -> SdbResult<()> {
        if self.consume_keyword(keyword) {
            Ok(())
        } else {
            Err(SdbError::Parse(format!(
                "expected keyword {keyword}, found {:?}",
                self.peek()
            )))
        }
    }

    fn peek_keyword(&self, keyword: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(w)) if w.eq_ignore_ascii_case(keyword))
    }

    fn expect_identifier(&mut self) -> SdbResult<String> {
        match self.next() {
            Some(Token::Ident(name)) => Ok(name),
            other => Err(SdbError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn parse_statement(&mut self) -> SdbResult<Statement> {
        if self.consume_keyword("CREATE") {
            if self.consume_keyword("TABLE") {
                return self.parse_create_table();
            }
            if self.consume_keyword("INDEX") {
                return self.parse_create_index();
            }
            return Err(SdbError::Parse(
                "expected TABLE or INDEX after CREATE".into(),
            ));
        }
        if self.consume_keyword("DROP") {
            if self.consume_keyword("TABLE") {
                let name = self.expect_identifier()?;
                return Ok(Statement::DropTable { name });
            }
            if self.consume_keyword("INDEX") {
                let name = self.expect_identifier()?;
                return Ok(Statement::DropIndex { name });
            }
            return Err(SdbError::Parse("expected TABLE or INDEX after DROP".into()));
        }
        if self.consume_keyword("INSERT") {
            return self.parse_insert();
        }
        if self.consume_keyword("UPDATE") {
            return self.parse_update();
        }
        if self.consume_keyword("DELETE") {
            return self.parse_delete();
        }
        if self.consume_keyword("SET") {
            return self.parse_set();
        }
        if self.consume_keyword("SELECT") {
            return Ok(Statement::Select(self.parse_select()?));
        }
        Err(SdbError::Parse(format!(
            "unsupported statement starting with {:?}",
            self.peek()
        )))
    }

    fn parse_create_table(&mut self) -> SdbResult<Statement> {
        let name = self.expect_identifier()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.expect_identifier()?;
            let type_name = self.expect_identifier()?;
            let column_type = parse_column_type(&type_name)?;
            columns.push((col, column_type));
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn parse_create_index(&mut self) -> SdbResult<Statement> {
        let name = self.expect_identifier()?;
        self.expect_keyword("ON")?;
        let table = self.expect_identifier()?;
        // `USING GIST` is optional but recommended by the listings.
        if self.consume_keyword("USING") {
            let method = self.expect_identifier()?;
            if !method.eq_ignore_ascii_case("GIST") {
                return Err(SdbError::Semantic(format!(
                    "unsupported index method {method}"
                )));
            }
        }
        self.expect(&Token::LParen)?;
        let column = self.expect_identifier()?;
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateIndex {
            name,
            table,
            column,
        })
    }

    fn parse_insert(&mut self) -> SdbResult<Statement> {
        self.expect_keyword("INTO")?;
        let table = self.expect_identifier()?;
        let mut columns = Vec::new();
        if self.consume_if(&Token::LParen) {
            loop {
                columns.push(self.expect_identifier()?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_expr()?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn parse_update(&mut self) -> SdbResult<Statement> {
        let table = self.expect_identifier()?;
        self.expect_keyword("SET")?;
        let column = self.expect_identifier()?;
        self.expect(&Token::Eq)?;
        let value = self.parse_expr()?;
        let where_clause = if self.consume_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            column,
            value,
            where_clause,
        })
    }

    fn parse_delete(&mut self) -> SdbResult<Statement> {
        self.expect_keyword("FROM")?;
        let table = self.expect_identifier()?;
        let where_clause = if self.consume_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    fn parse_set(&mut self) -> SdbResult<Statement> {
        let name = match self.next() {
            Some(Token::Variable(v)) => format!("@{v}"),
            Some(Token::Ident(name)) => name,
            other => {
                return Err(SdbError::Parse(format!(
                    "expected setting or variable name, found {other:?}"
                )))
            }
        };
        self.expect(&Token::Eq)?;
        let value = self.parse_expr()?;
        Ok(Statement::Set { name, value })
    }

    fn parse_select(&mut self) -> SdbResult<SelectStatement> {
        let mut items = Vec::new();
        loop {
            if self.peek_keyword("COUNT") {
                // Look ahead for COUNT(*).
                let saved = self.pos;
                self.pos += 1;
                if self.consume_if(&Token::LParen)
                    && self.consume_if(&Token::Star)
                    && self.consume_if(&Token::RParen)
                {
                    items.push(SelectItem::CountStar);
                } else {
                    self.pos = saved;
                    items.push(SelectItem::Expr(self.parse_expr()?));
                }
            } else {
                items.push(SelectItem::Expr(self.parse_expr()?));
            }
            // Optional alias: `expr AS name` or bare trailing identifier that
            // is not a clause keyword.
            if self.consume_keyword("AS") {
                self.expect_identifier()?;
            }
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }

        let mut from = Vec::new();
        let mut join_on = None;
        if self.consume_keyword("FROM") {
            from.push(self.parse_table_ref()?);
            loop {
                if self.consume_if(&Token::Comma) {
                    from.push(self.parse_table_ref()?);
                } else if self.consume_keyword("JOIN") {
                    from.push(self.parse_table_ref()?);
                    self.expect_keyword("ON")?;
                    join_on = Some(self.parse_expr()?);
                } else {
                    break;
                }
            }
        }

        let where_clause = if self.consume_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let order_by = if self.consume_keyword("ORDER") {
            self.expect_keyword("BY")?;
            let expr = self.parse_expr()?;
            let descending = if self.consume_keyword("DESC") {
                true
            } else {
                self.consume_keyword("ASC");
                false
            };
            Some(OrderByClause { expr, descending })
        } else {
            None
        };

        let limit = if self.consume_keyword("LIMIT") {
            match self.next() {
                Some(Token::Number(n)) if n >= 0.0 && n.fract() == 0.0 && n < 9.0e15 => {
                    Some(n as usize)
                }
                other => {
                    return Err(SdbError::Parse(format!(
                        "LIMIT expects a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };

        Ok(SelectStatement {
            items,
            from,
            join_on,
            where_clause,
            order_by,
            limit,
        })
    }

    fn parse_table_ref(&mut self) -> SdbResult<TableRef> {
        let table = self.expect_identifier()?;
        // Optional alias with or without AS (Listing 7: `t As a1`).
        let alias = if self.consume_keyword("AS") {
            self.expect_identifier()?
        } else if let Some(Token::Ident(word)) = self.peek() {
            let upper = word.to_ascii_uppercase();
            // A bare identifier that is not a clause keyword is an alias.
            if ["JOIN", "ON", "WHERE", "AS", "FROM", "ORDER", "LIMIT"].contains(&upper.as_str()) {
                table.clone()
            } else {
                self.expect_identifier()?
            }
        } else {
            table.clone()
        };
        Ok(TableRef { table, alias })
    }

    // ----- expressions ------------------------------------------------------

    fn parse_expr(&mut self) -> SdbResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> SdbResult<Expr> {
        let mut left = self.parse_and()?;
        while self.consume_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::Binary {
                op: BinaryOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> SdbResult<Expr> {
        let mut left = self.parse_not()?;
        while self.consume_keyword("AND") {
            let right = self.parse_not()?;
            left = Expr::Binary {
                op: BinaryOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> SdbResult<Expr> {
        if self.consume_keyword("NOT") {
            return Ok(Expr::Not(Box::new(self.parse_not()?)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> SdbResult<Expr> {
        let left = self.parse_primary()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinaryOp::Eq),
            Some(Token::NotEq) => Some(BinaryOp::NotEq),
            Some(Token::Lt) => Some(BinaryOp::Lt),
            Some(Token::LtEq) => Some(BinaryOp::LtEq),
            Some(Token::Gt) => Some(BinaryOp::Gt),
            Some(Token::GtEq) => Some(BinaryOp::GtEq),
            Some(Token::SameBox) => Some(BinaryOp::SameBox),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_primary()?;
            return Ok(Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn parse_primary(&mut self) -> SdbResult<Expr> {
        let expr = match self.next() {
            Some(Token::Number(n)) => {
                if n.fract() == 0.0 && n.abs() < 9.0e18 {
                    Expr::Literal(Value::Int(n as i64))
                } else {
                    Expr::Literal(Value::Double(n))
                }
            }
            Some(Token::String(s)) => Expr::Literal(Value::Text(s)),
            Some(Token::Variable(v)) => Expr::Variable(v),
            Some(Token::LParen) => {
                let inner = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                inner
            }
            Some(Token::Ident(name)) => {
                let upper = name.to_ascii_uppercase();
                if upper == "TRUE" {
                    Expr::Literal(Value::Bool(true))
                } else if upper == "FALSE" {
                    Expr::Literal(Value::Bool(false))
                } else if upper == "NULL" {
                    Expr::Literal(Value::Null)
                } else if self.consume_if(&Token::LParen) {
                    // Function call.
                    let mut args = Vec::new();
                    if !self.consume_if(&Token::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.consume_if(&Token::Comma) {
                                break;
                            }
                        }
                        self.expect(&Token::RParen)?;
                    }
                    Expr::Function { name, args }
                } else if self.consume_if(&Token::Dot) {
                    let column = self.expect_identifier()?;
                    Expr::Column {
                        table: Some(name),
                        column,
                    }
                } else {
                    Expr::Column {
                        table: None,
                        column: name,
                    }
                }
            }
            other => return Err(SdbError::Parse(format!("unexpected token {other:?}"))),
        };

        // Optional `::type` casts (possibly chained).
        let mut expr = expr;
        while self.consume_if(&Token::DoubleColon) {
            let target = self.expect_identifier()?.to_lowercase();
            expr = Expr::Cast {
                expr: Box::new(expr),
                target,
            };
        }
        Ok(expr)
    }
}

fn parse_column_type(name: &str) -> SdbResult<ColumnType> {
    match name.to_ascii_lowercase().as_str() {
        "int" | "integer" | "bigint" => Ok(ColumnType::Integer),
        "double" | "float" | "real" => Ok(ColumnType::Double),
        "text" | "varchar" | "string" => Ok(ColumnType::Text),
        "geometry" => Ok(ColumnType::Geometry),
        "bool" | "boolean" => Ok(ColumnType::Boolean),
        other => Err(SdbError::Parse(format!("unsupported column type {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create_table_listing1() {
        let stmt = parse_statement("CREATE TABLE t1 (g geometry);").unwrap();
        assert_eq!(
            stmt,
            Statement::CreateTable {
                name: "t1".into(),
                columns: vec![("g".into(), ColumnType::Geometry)],
            }
        );
    }

    #[test]
    fn parse_insert_listing1() {
        let stmt = parse_statement("INSERT INTO t1 (g) VALUES ('LINESTRING(0 1,2 0)');").unwrap();
        match stmt {
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                assert_eq!(table, "t1");
                assert_eq!(columns, vec!["g".to_string()]);
                assert_eq!(rows.len(), 1);
                assert_eq!(rows[0][0], Expr::text("LINESTRING(0 1,2 0)"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_insert_multiple_rows_listing7() {
        let stmt = parse_statement(
            "INSERT INTO t (id, geom) VALUES (1,'GEOMETRYCOLLECTION(MULTIPOINT((0 0),(3 1)))'::geometry),(2,'POINT(0 0)'::geometry)",
        )
        .unwrap();
        match stmt {
            Statement::Insert { rows, .. } => {
                assert_eq!(rows.len(), 2);
                assert!(matches!(rows[0][1], Expr::Cast { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_join_count_query_listing1() {
        let stmt =
            parse_statement("SELECT COUNT(*) FROM t1 JOIN t2 ON ST_Covers(t1.g,t2.g);").unwrap();
        match stmt {
            Statement::Select(select) => {
                assert_eq!(select.items, vec![SelectItem::CountStar]);
                assert_eq!(select.from.len(), 2);
                assert_eq!(select.from[0].table, "t1");
                match select.join_on {
                    Some(Expr::Function { name, args }) => {
                        assert_eq!(name, "ST_Covers");
                        assert_eq!(args.len(), 2);
                    }
                    other => panic!("unexpected join condition {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_comma_join_with_aliases_listing7() {
        let stmt = parse_statement(
            "SELECT a1.id, a2.id FROM t As a1, t As a2 WHERE ST_Contains(a1.geom, a2.geom);",
        )
        .unwrap();
        match stmt {
            Statement::Select(select) => {
                assert_eq!(select.items.len(), 2);
                assert_eq!(select.from.len(), 2);
                assert_eq!(select.from[0].alias, "a1");
                assert_eq!(select.from[1].alias, "a2");
                assert!(select.where_clause.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_set_variable_listing3() {
        let stmt = parse_statement("SET @g1='MULTILINESTRING((990 280,100 20))';").unwrap();
        assert_eq!(
            stmt,
            Statement::Set {
                name: "@g1".into(),
                value: Expr::text("MULTILINESTRING((990 280,100 20))"),
            }
        );
    }

    #[test]
    fn parse_set_session_setting_listing8() {
        let stmt = parse_statement("SET enable_seqscan = false;").unwrap();
        assert_eq!(
            stmt,
            Statement::Set {
                name: "enable_seqscan".into(),
                value: Expr::Literal(Value::Bool(false)),
            }
        );
    }

    #[test]
    fn parse_scalar_select_with_cast_listing5() {
        let stmt = parse_statement(
            "SELECT ST_Distance('MULTIPOINT((1 0),(0 0))'::geometry, 'MULTIPOINT((-2 0),EMPTY)'::geometry);",
        )
        .unwrap();
        match stmt {
            Statement::Select(select) => {
                assert!(select.from.is_empty());
                assert_eq!(select.items.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_where_with_samebox_listing8() {
        let stmt = parse_statement("SELECT COUNT(*) FROM t WHERE geom ~= 'POINT EMPTY'::geometry;")
            .unwrap();
        match stmt {
            Statement::Select(select) => {
                assert_eq!(select.items, vec![SelectItem::CountStar]);
                match select.where_clause {
                    Some(Expr::Binary { op, .. }) => assert_eq!(op, BinaryOp::SameBox),
                    other => panic!("unexpected where {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_create_index_listing8() {
        let stmt = parse_statement("CREATE INDEX idx ON t USING GIST (geom);").unwrap();
        assert_eq!(
            stmt,
            Statement::CreateIndex {
                name: "idx".into(),
                table: "t".into(),
                column: "geom".into(),
            }
        );
    }

    #[test]
    fn parse_nested_function_calls_listing4() {
        let stmt = parse_statement("SELECT ST_Overlaps(ST_SwapXY(@g2), ST_SwapXY(@g1));").unwrap();
        match stmt {
            Statement::Select(select) => match &select.items[0] {
                SelectItem::Expr(Expr::Function { name, args }) => {
                    assert_eq!(name, "ST_Overlaps");
                    assert!(matches!(&args[0], Expr::Function { name, .. } if name == "ST_SwapXY"));
                }
                other => panic!("unexpected item {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_script_splits_statements() {
        let script = "CREATE TABLE t1 (g geometry); INSERT INTO t1 (g) VALUES ('POINT(1 1)'); SELECT COUNT(*) FROM t1 JOIN t1 ON ST_Intersects(t1.g, t1.g)";
        let stmts = parse_script(script).unwrap();
        assert_eq!(stmts.len(), 3);
        // Semicolons inside string literals do not split.
        let stmts = parse_script("SELECT 'a;b'; SELECT 2").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn parse_order_by_limit_knn_template() {
        let stmt = parse_statement(
            "SELECT ST_AsText(a.g) FROM t0 a ORDER BY ST_Distance(a.g, 'POINT(3 4)'::geometry) LIMIT 2;",
        )
        .unwrap();
        match stmt {
            Statement::Select(select) => {
                assert_eq!(select.from.len(), 1);
                assert_eq!(select.from[0].alias, "a");
                assert_eq!(select.limit, Some(2));
                let order = select.order_by.expect("order by");
                assert!(!order.descending);
                match order.expr {
                    Expr::Function { name, args } => {
                        assert_eq!(name, "ST_Distance");
                        assert_eq!(args.len(), 2);
                    }
                    other => panic!("unexpected order key {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_order_by_directions_and_bare_limit() {
        let stmt = parse_statement("SELECT id FROM t ORDER BY id DESC").unwrap();
        match stmt {
            Statement::Select(select) => {
                assert!(select.order_by.unwrap().descending);
                assert_eq!(select.limit, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        let stmt = parse_statement("SELECT id FROM t ORDER BY id ASC LIMIT 0").unwrap();
        match stmt {
            Statement::Select(select) => {
                assert!(!select.order_by.unwrap().descending);
                assert_eq!(select.limit, Some(0));
            }
            other => panic!("unexpected {other:?}"),
        }
        let stmt = parse_statement("SELECT COUNT(*) FROM t LIMIT 5").unwrap();
        match stmt {
            Statement::Select(select) => {
                assert!(select.order_by.is_none());
                assert_eq!(select.limit, Some(5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn order_and_limit_are_not_table_aliases() {
        // `FROM t ORDER BY ...` must not read ORDER as the table alias.
        let stmt = parse_statement("SELECT g FROM t ORDER BY g LIMIT 1").unwrap();
        match stmt {
            Statement::Select(select) => assert_eq!(select.from[0].alias, "t"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_order_and_limit_clauses_error() {
        assert!(parse_statement("SELECT g FROM t ORDER g").is_err());
        assert!(parse_statement("SELECT g FROM t LIMIT").is_err());
        assert!(parse_statement("SELECT g FROM t LIMIT -1").is_err());
        assert!(parse_statement("SELECT g FROM t LIMIT 1.5").is_err());
        assert!(parse_statement("SELECT g FROM t LIMIT two").is_err());
    }

    #[test]
    fn parse_update_with_where() {
        let stmt =
            parse_statement("UPDATE t1 SET g = 'POINT(2 3)' WHERE g = 'POINT(1 1)'::geometry;")
                .unwrap();
        match stmt {
            Statement::Update {
                table,
                column,
                value,
                where_clause,
            } => {
                assert_eq!(table, "t1");
                assert_eq!(column, "g");
                assert_eq!(value, Expr::text("POINT(2 3)"));
                assert!(matches!(
                    where_clause,
                    Some(Expr::Binary {
                        op: BinaryOp::Eq,
                        ..
                    })
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
        let stmt = parse_statement("UPDATE t SET g = 'POINT(0 0)'").unwrap();
        assert!(matches!(
            stmt,
            Statement::Update {
                where_clause: None,
                ..
            }
        ));
    }

    #[test]
    fn parse_delete_with_and_without_where() {
        let stmt = parse_statement("DELETE FROM t1 WHERE g = 'POINT(1 1)';").unwrap();
        match stmt {
            Statement::Delete {
                table,
                where_clause,
            } => {
                assert_eq!(table, "t1");
                assert!(where_clause.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        let stmt = parse_statement("DELETE FROM t1").unwrap();
        assert!(matches!(
            stmt,
            Statement::Delete {
                where_clause: None,
                ..
            }
        ));
    }

    #[test]
    fn parse_drop_index_and_drop_table() {
        assert_eq!(
            parse_statement("DROP INDEX idx_0_t1;").unwrap(),
            Statement::DropIndex {
                name: "idx_0_t1".into()
            }
        );
        assert_eq!(
            parse_statement("DROP TABLE t1").unwrap(),
            Statement::DropTable { name: "t1".into() }
        );
        assert!(parse_statement("DROP VIEW v").is_err());
    }

    #[test]
    fn malformed_mutations_error() {
        assert!(parse_statement("UPDATE t1 g = 'POINT(0 0)'").is_err());
        assert!(parse_statement("UPDATE t1 SET g 'POINT(0 0)'").is_err());
        assert!(parse_statement("DELETE t1").is_err());
        assert!(parse_statement("DELETE FROM").is_err());
        assert!(parse_statement("DROP INDEX").is_err());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_statement("SELEKT 1").is_err());
        assert!(parse_statement("CREATE TABLE t (g geometry) garbage").is_err());
        assert!(parse_statement("CREATE TABLE t (g unknowntype)").is_err());
        assert!(parse_statement("INSERT INTO t VALUES").is_err());
        assert!(parse_statement("SELECT COUNT(*) FROM t JOIN").is_err());
    }

    #[test]
    fn parse_select_from_subselect_style_alias() {
        // Listing 6 uses `FROM (SELECT ...)` which is out of scope; the
        // equivalent scalar form must parse instead.
        let stmt = parse_statement(
            "SELECT ST_Within('POINT(0 0)'::geometry, 'GEOMETRYCOLLECTION(POINT(0 0),LINESTRING(0 0,1 0))'::geometry)",
        );
        assert!(stmt.is_ok());
    }
}
