//! Catalog and row storage.

use crate::ast::ColumnType;
use crate::error::{SdbError, SdbResult};
use crate::value::Value;
use spatter_geom::Envelope;
use spatter_index::RTree;
use std::collections::BTreeMap;

/// A table: a schema plus row storage.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Column definitions in order.
    pub columns: Vec<(String, ColumnType)>,
    /// Row storage; each row has one value per column.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(columns: Vec<(String, ColumnType)>) -> Self {
        Table {
            columns,
            rows: Vec::new(),
        }
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|(c, _)| c.eq_ignore_ascii_case(name))
    }

    /// Number of live rows (tombstoned slots excluded).
    pub fn row_count(&self) -> usize {
        self.rows.iter().filter(|row| !row.is_empty()).count()
    }

    /// Whether a row slot holds a live row. Deleted rows leave an empty
    /// tombstone slot behind so later slots keep their ids — R-tree payloads
    /// are slot indices and must stay valid across deletes.
    pub fn is_live(&self, row: usize) -> bool {
        self.rows.get(row).is_some_and(|r| !r.is_empty())
    }

    /// Tombstones a row slot, returning the removed values. The slot stays
    /// allocated (empty) so surrounding row ids are stable.
    pub fn tombstone(&mut self, row: usize) -> Option<Vec<Value>> {
        let slot = self.rows.get_mut(row)?;
        if slot.is_empty() {
            return None;
        }
        Some(std::mem::take(slot))
    }

    /// Iterates live rows as `(slot, values)` pairs.
    pub fn live_rows(&self) -> impl Iterator<Item = (usize, &Vec<Value>)> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| !row.is_empty())
    }
}

/// A spatial index over one geometry column of one table.
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    /// Indexed table.
    pub table: String,
    /// Indexed column.
    pub column: String,
    /// The R-tree mapping envelopes to row indices.
    pub tree: RTree<usize>,
}

/// The database: named tables, spatial indexes and session variables.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    indexes: BTreeMap<String, SpatialIndex>,
    variables: BTreeMap<String, Value>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Creates a table, failing if one with the same name exists.
    pub fn create_table(
        &mut self,
        name: &str,
        columns: Vec<(String, ColumnType)>,
    ) -> SdbResult<()> {
        let key = name.to_lowercase();
        if self.tables.contains_key(&key) {
            return Err(SdbError::Semantic(format!("table {name} already exists")));
        }
        self.tables.insert(key, Table::new(columns));
        Ok(())
    }

    /// Drops a table and any indexes on it.
    pub fn drop_table(&mut self, name: &str) -> SdbResult<()> {
        let key = name.to_lowercase();
        if self.tables.remove(&key).is_none() {
            return Err(SdbError::Semantic(format!("table {name} does not exist")));
        }
        self.indexes
            .retain(|_, idx| !idx.table.eq_ignore_ascii_case(name));
        Ok(())
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> SdbResult<&Table> {
        self.tables
            .get(&name.to_lowercase())
            .ok_or_else(|| SdbError::Semantic(format!("table {name} does not exist")))
    }

    /// Looks up a table mutably.
    pub fn table_mut(&mut self, name: &str) -> SdbResult<&mut Table> {
        self.tables
            .get_mut(&name.to_lowercase())
            .ok_or_else(|| SdbError::Semantic(format!("table {name} does not exist")))
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Registers a spatial index. The tree must be built by the caller
    /// (the engine knows how to compute envelopes and apply index faults).
    pub fn create_index(&mut self, name: &str, index: SpatialIndex) -> SdbResult<()> {
        let key = name.to_lowercase();
        if self.indexes.contains_key(&key) {
            return Err(SdbError::Semantic(format!("index {name} already exists")));
        }
        self.indexes.insert(key, index);
        Ok(())
    }

    /// Drops an index by name, failing if it does not exist.
    pub fn drop_index(&mut self, name: &str) -> SdbResult<()> {
        let key = name.to_lowercase();
        if self.indexes.remove(&key).is_none() {
            return Err(SdbError::Semantic(format!("index {name} does not exist")));
        }
        Ok(())
    }

    /// Finds an index on a given table/column pair.
    pub fn index_on(&self, table: &str, column: &str) -> Option<&SpatialIndex> {
        self.indexes.values().find(|idx| {
            idx.table.eq_ignore_ascii_case(table) && idx.column.eq_ignore_ascii_case(column)
        })
    }

    /// All registered indexes.
    pub fn indexes(&self) -> impl Iterator<Item = &SpatialIndex> {
        self.indexes.values()
    }

    /// Mutable access to every index on a table, for incremental maintenance
    /// after `UPDATE`/`DELETE` (the engine removes and reinserts the touched
    /// envelopes instead of rebuilding the tree).
    pub fn indexes_for_mut(&mut self, table: &str) -> impl Iterator<Item = &mut SpatialIndex> + '_ {
        let table = table.to_lowercase();
        self.indexes
            .values_mut()
            .filter(move |idx| idx.table.eq_ignore_ascii_case(&table))
    }

    /// Rebuilds every index on a table (after inserts).
    pub fn refresh_indexes_for(
        &mut self,
        table: &str,
        build: impl Fn(&Table, &str) -> RTree<usize>,
    ) {
        let Some(table_data) = self.tables.get(&table.to_lowercase()).cloned() else {
            return;
        };
        for idx in self.indexes.values_mut() {
            if idx.table.eq_ignore_ascii_case(table) {
                idx.tree = build(&table_data, &idx.column);
            }
        }
    }

    /// Sets a session variable (`@name`).
    pub fn set_variable(&mut self, name: &str, value: Value) {
        self.variables.insert(name.to_lowercase(), value);
    }

    /// Reads a session variable.
    pub fn variable(&self, name: &str) -> Option<&Value> {
        self.variables.get(&name.to_lowercase())
    }

    /// Helper used by the engine and tests: envelope of a geometry value
    /// (empty envelope for anything that is not a geometry).
    pub fn value_envelope(value: &Value) -> Envelope {
        match value {
            Value::Geometry(g) => g.envelope(),
            _ => Envelope::empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatter_geom::wkt::parse_wkt;

    fn geometry_value(wkt: &str) -> Value {
        Value::Geometry(parse_wkt(wkt).unwrap())
    }

    #[test]
    fn create_and_drop_tables() {
        let mut db = Database::new();
        db.create_table("t1", vec![("g".into(), ColumnType::Geometry)])
            .unwrap();
        assert!(
            db.create_table("T1", vec![]).is_err(),
            "names are case-insensitive"
        );
        assert_eq!(db.table_names(), vec!["t1".to_string()]);
        assert!(db.table("t1").is_ok());
        assert!(db.table("missing").is_err());
        db.drop_table("t1").unwrap();
        assert!(db.drop_table("t1").is_err());
    }

    #[test]
    fn rows_and_column_lookup() {
        let mut db = Database::new();
        db.create_table(
            "t",
            vec![
                ("id".into(), ColumnType::Integer),
                ("geom".into(), ColumnType::Geometry),
            ],
        )
        .unwrap();
        let table = db.table_mut("t").unwrap();
        table
            .rows
            .push(vec![Value::Int(1), geometry_value("POINT(1 1)")]);
        assert_eq!(table.row_count(), 1);
        assert_eq!(table.column_index("GEOM"), Some(1));
        assert_eq!(table.column_index("missing"), None);
    }

    #[test]
    fn variables_are_case_insensitive() {
        let mut db = Database::new();
        db.set_variable("@g1", Value::Int(5));
        assert_eq!(db.variable("@G1"), Some(&Value::Int(5)));
        assert_eq!(db.variable("@other"), None);
    }

    #[test]
    fn index_registration_and_lookup() {
        let mut db = Database::new();
        db.create_table("t", vec![("geom".into(), ColumnType::Geometry)])
            .unwrap();
        let index = SpatialIndex {
            table: "t".into(),
            column: "geom".into(),
            tree: RTree::new(),
        };
        db.create_index("idx", index).unwrap();
        assert!(db.index_on("T", "GEOM").is_some());
        assert!(db.index_on("t", "other").is_none());
        assert!(db
            .create_index(
                "idx",
                SpatialIndex {
                    table: "t".into(),
                    column: "geom".into(),
                    tree: RTree::new()
                }
            )
            .is_err());
    }

    #[test]
    fn value_envelope_of_non_geometry_is_empty() {
        assert!(Database::value_envelope(&Value::Int(3)).is_empty());
        assert!(!Database::value_envelope(&geometry_value("POINT(1 1)")).is_empty());
    }
}
