//! Abstract syntax tree of the supported SQL subset.
//!
//! The grammar covers exactly the statement shapes the paper's listings and
//! Spatter's query template (Figure 5) use; it is not a general SQL parser.

use crate::value::Value;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type, ...)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions: `(name, type)`.
        columns: Vec<(String, ColumnType)>,
    },
    /// `DROP TABLE name`
    DropTable {
        /// Table name.
        name: String,
    },
    /// `DROP INDEX name`
    DropIndex {
        /// Index name.
        name: String,
    },
    /// `CREATE INDEX idx ON table USING GIST (column)`
    CreateIndex {
        /// Index name.
        name: String,
        /// Table name.
        table: String,
        /// Indexed column.
        column: String,
    },
    /// `INSERT INTO table (cols) VALUES (...), (...)`
    Insert {
        /// Table name.
        table: String,
        /// Column names (empty means all columns in definition order).
        columns: Vec<String>,
        /// One expression list per row.
        rows: Vec<Vec<Expr>>,
    },
    /// `UPDATE table SET column = expr [WHERE expr]`
    Update {
        /// Table name.
        table: String,
        /// Assigned column.
        column: String,
        /// The new value expression (row-independent in the generated
        /// workloads, but arbitrary expressions parse).
        value: Expr,
        /// The `WHERE` condition, if any (absent means all rows).
        where_clause: Option<Expr>,
    },
    /// `DELETE FROM table [WHERE expr]`
    Delete {
        /// Table name.
        table: String,
        /// The `WHERE` condition, if any (absent means all rows).
        where_clause: Option<Expr>,
    },
    /// `SET name = expr` / `SET @var = expr` (session settings and MySQL-style
    /// user variables, as in Listings 3, 4 and 8).
    Set {
        /// Setting or variable name (including a leading `@` for variables).
        name: String,
        /// The assigned expression.
        value: Expr,
    },
    /// `SELECT ...`
    Select(SelectStatement),
}

/// Column types of `CREATE TABLE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// `int` / `integer`
    Integer,
    /// `double` / `float`
    Double,
    /// `text` / `varchar`
    Text,
    /// `geometry`
    Geometry,
    /// `bool` / `boolean`
    Boolean,
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// The projected items.
    pub items: Vec<SelectItem>,
    /// The FROM sources (empty for scalar selects such as Listing 5).
    pub from: Vec<TableRef>,
    /// An explicit `JOIN ... ON ...` condition, if the query used JOIN syntax.
    pub join_on: Option<Expr>,
    /// The `WHERE` condition, if any.
    pub where_clause: Option<Expr>,
    /// The `ORDER BY` key, if any (single key, as in the KNN template
    /// `ORDER BY ST_Distance(a.g, <origin>)`).
    pub order_by: Option<OrderByClause>,
    /// The `LIMIT` row count, if any.
    pub limit: Option<usize>,
}

/// An `ORDER BY` clause: one sort key with a direction.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByClause {
    /// The sort-key expression (must evaluate to a numeric value or NULL;
    /// NULL keys sort last, as a GiST `<->` scan would place unindexable
    /// EMPTY geometries).
    pub expr: Expr,
    /// `true` for `DESC`, `false` for `ASC` (the default).
    pub descending: bool,
}

/// A projected item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `COUNT(*)`
    CountStar,
    /// An arbitrary expression (optionally aliased; the alias is ignored).
    Expr(Expr),
}

/// A table reference with an optional alias (`t AS a1` of Listing 7).
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// The underlying table name.
    pub table: String,
    /// The alias used to qualify columns (defaults to the table name).
    pub alias: String,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `~=` — the PostGIS same-bounding-box operator of Listing 8.
    SameBox,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference, optionally qualified (`t1.g`).
    Column {
        /// Table or alias qualifier, if present.
        table: Option<String>,
        /// Column name.
        column: String,
    },
    /// A user variable reference (`@g1`).
    Variable(String),
    /// A function call (`ST_Covers(a, b)`).
    Function {
        /// Function name as written.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// A cast (`'...'::geometry`).
    Cast {
        /// The expression being cast.
        expr: Box<Expr>,
        /// Target type name (lowercased).
        target: String,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `NOT expr`
    Not(Box<Expr>),
}

impl Expr {
    /// Convenience constructor for string literals.
    pub fn text(s: impl Into<String>) -> Expr {
        Expr::Literal(Value::Text(s.into()))
    }

    /// Convenience constructor for integer literals.
    pub fn int(i: i64) -> Expr {
        Expr::Literal(Value::Int(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expression_constructors() {
        assert_eq!(Expr::int(7), Expr::Literal(Value::Int(7)));
        assert_eq!(Expr::text("hi"), Expr::Literal(Value::Text("hi".into())));
    }

    #[test]
    fn ast_nodes_are_comparable() {
        let a = Expr::Binary {
            op: BinaryOp::And,
            left: Box::new(Expr::int(1)),
            right: Box::new(Expr::int(2)),
        };
        assert_eq!(a.clone(), a);
    }
}
