//! The execution engine: statement execution, joins, index scans and the
//! prepared-geometry path, with engine-level seeded faults.

use crate::ast::{BinaryOp, ColumnType, Expr, SelectItem, SelectStatement, Statement, TableRef};
use crate::catalog::{Database, SpatialIndex, Table};
use crate::coverage;
use crate::error::{SdbError, SdbResult};
use crate::faults::{FaultId, FaultSet};
use crate::functions::{self, DistancePredicate, FunctionContext};
use crate::parser::{parse_script, parse_statement};
use crate::profile::EngineProfile;
use crate::value::Value;
use spatter_geom::{Envelope, Geometry};
use spatter_index::RTree;
use spatter_topo::predicates::NamedPredicate;
use spatter_topo::prepared::PreparedGeometry;
use std::time::{Duration, Instant};

/// The effect of a mutating statement (the db2 executor shape): how many rows
/// a DML statement touched, or which DDL object was dropped. Queries and
/// pure-DDL setup statements (`CREATE ...`, `INSERT`, `SET`) carry no effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionResult {
    /// `UPDATE` touched this many rows.
    Update {
        /// Number of rows updated.
        rows_updated: usize,
    },
    /// `DELETE` removed this many rows.
    Delete {
        /// Number of rows deleted.
        rows_deleted: usize,
    },
    /// `DROP INDEX` removed an index.
    DropIndex,
    /// `DROP TABLE` removed a table.
    DropTable,
}

/// The result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Column labels (empty for DDL/DML).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// The mutation effect, for `UPDATE`/`DELETE`/`DROP` statements.
    pub effect: Option<ExecutionResult>,
}

impl QueryResult {
    /// An empty result (DDL/DML/SET statements).
    pub fn none() -> Self {
        QueryResult {
            columns: Vec::new(),
            rows: Vec::new(),
            effect: None,
        }
    }

    /// An empty result carrying a mutation effect.
    pub fn with_effect(effect: ExecutionResult) -> Self {
        QueryResult {
            effect: Some(effect),
            ..QueryResult::none()
        }
    }

    /// The single scalar value of a one-row, one-column result.
    pub fn single_value(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }

    /// The COUNT(*) value of a count query.
    pub fn count(&self) -> Option<i64> {
        self.single_value().and_then(|v| v.as_int())
    }

    /// Number of result rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

/// Process-wide physical-plan switches, used by equivalence tests and
/// benchmarks to force the legacy paths. Plans only change how a result is
/// computed, never what it is, so flipping these is always safe.
pub mod plan {
    use std::sync::atomic::{AtomicBool, Ordering};

    static DISTANCE_JOIN_ENABLED: AtomicBool = AtomicBool::new(true);

    /// Enables or disables the distance-join physical plans
    /// (`ST_DWithin`/`ST_DFullyWithin` joins via index probe or prepared
    /// envelope screen). When disabled, distance joins take the general
    /// nested loop. On by default.
    pub fn set_distance_join_enabled(enabled: bool) {
        DISTANCE_JOIN_ENABLED.store(enabled, Ordering::SeqCst);
    }

    /// Whether distance joins may use their dedicated physical plans.
    pub fn distance_join_enabled() -> bool {
        DISTANCE_JOIN_ENABLED.load(Ordering::SeqCst)
    }

    /// Runs `f` with the distance-join plans disabled, re-enabling them
    /// afterwards even if `f` panics. The switch is process global, so
    /// callers comparing plans concurrently must serialize themselves.
    pub fn with_distance_join_disabled<T>(f: impl FnOnce() -> T) -> T {
        struct Restore;
        impl Drop for Restore {
            fn drop(&mut self) {
                set_distance_join_enabled(true);
            }
        }
        let _restore = Restore;
        set_distance_join_enabled(false);
        f()
    }
}

/// Reusable per-engine buffers for the join paths: index-probe candidates,
/// matched pair lists and the prepared distance join's cached inner
/// envelopes. Taken out of the engine for the duration of one SELECT (so the
/// shared borrow of `self` stays available) and put back afterwards; scenario
/// batches thereby stop churning the allocator on every join.
#[derive(Debug, Clone, Default)]
struct ExecScratch {
    candidates: Vec<usize>,
    pairs: Vec<(usize, usize)>,
    right_envelopes: Vec<Envelope>,
}

/// A spatial SQL engine instance: one profile, one fault set, one database.
#[derive(Debug, Clone)]
pub struct Engine {
    profile: EngineProfile,
    faults: FaultSet,
    database: Database,
    enable_seqscan: bool,
    enable_prepared: bool,
    engine_time: Duration,
    statements_executed: usize,
    scratch: ExecScratch,
}

impl Engine {
    /// A stock engine of the given profile, carrying that profile's default
    /// seeded faults (the "released version" the paper tested).
    pub fn new(profile: EngineProfile) -> Self {
        Engine::with_faults(profile, profile.default_faults())
    }

    /// A reference engine with no faults (the "fully patched" build used to
    /// validate oracle findings).
    pub fn reference(profile: EngineProfile) -> Self {
        Engine::with_faults(profile, FaultSet::none())
    }

    /// An engine with an explicit fault set.
    pub fn with_faults(profile: EngineProfile, faults: FaultSet) -> Self {
        Engine {
            profile,
            faults,
            database: Database::new(),
            enable_seqscan: true,
            enable_prepared: true,
            engine_time: Duration::ZERO,
            statements_executed: 0,
            scratch: ExecScratch::default(),
        }
    }

    /// The engine's profile.
    pub fn profile(&self) -> EngineProfile {
        self.profile
    }

    /// The enabled faults.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Mutable access to the fault set (used by the campaign harness to
    /// "apply fixes").
    pub fn faults_mut(&mut self) -> &mut FaultSet {
        &mut self.faults
    }

    /// The underlying database (for introspection in tests and examples).
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// Whether sequential scans are enabled (`SET enable_seqscan = ...`).
    pub fn seqscan_enabled(&self) -> bool {
        self.enable_seqscan
    }

    /// Whether the prepared-geometry join path is enabled
    /// (`SET enable_prepared = ...`).
    pub fn prepared_enabled(&self) -> bool {
        self.enable_prepared
    }

    /// Cumulative wall-clock time spent executing statements, and the number
    /// of statements executed (the Figure 7 measurement).
    pub fn execution_stats(&self) -> (Duration, usize) {
        (self.engine_time, self.statements_executed)
    }

    /// Resets the execution statistics.
    pub fn reset_stats(&mut self) {
        self.engine_time = Duration::ZERO;
        self.statements_executed = 0;
    }

    /// Executes one SQL statement.
    pub fn execute(&mut self, sql: &str) -> SdbResult<QueryResult> {
        let statement = parse_statement(sql)?;
        self.execute_parsed(&statement)
    }

    /// Executes a semicolon-separated script, returning one result per
    /// statement. Execution stops at the first error.
    pub fn execute_script(&mut self, sql: &str) -> SdbResult<Vec<QueryResult>> {
        let statements = parse_script(sql)?;
        let mut results = Vec::with_capacity(statements.len());
        for statement in &statements {
            results.push(self.execute_parsed(statement)?);
        }
        Ok(results)
    }

    /// Executes an already-parsed statement.
    pub fn execute_parsed(&mut self, statement: &Statement) -> SdbResult<QueryResult> {
        let start = Instant::now();
        let result = self.dispatch(statement);
        self.engine_time += start.elapsed();
        self.statements_executed += 1;
        result
    }

    fn dispatch(&mut self, statement: &Statement) -> SdbResult<QueryResult> {
        match statement {
            Statement::CreateTable { name, columns } => {
                coverage::hit("sdb.exec.create_table");
                self.database.create_table(name, columns.clone())?;
                Ok(QueryResult::none())
            }
            Statement::DropTable { name } => {
                coverage::hit("sdb.exec.drop_table");
                self.database.drop_table(name)?;
                Ok(QueryResult::with_effect(ExecutionResult::DropTable))
            }
            Statement::DropIndex { name } => {
                coverage::hit("sdb.exec.drop_index");
                self.database.drop_index(name)?;
                Ok(QueryResult::with_effect(ExecutionResult::DropIndex))
            }
            Statement::CreateIndex {
                name,
                table,
                column,
            } => {
                coverage::hit("sdb.exec.create_index");
                self.create_index(name, table, column)
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                coverage::hit("sdb.exec.insert");
                self.insert(table, columns, rows)
            }
            Statement::Update {
                table,
                column,
                value,
                where_clause,
            } => {
                coverage::hit("sdb.exec.update");
                self.update(table, column, value, where_clause.as_ref())
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                coverage::hit("sdb.exec.delete");
                self.delete(table, where_clause.as_ref())
            }
            Statement::Set { name, value } => self.set(name, value),
            Statement::Select(select) => self.select(select),
        }
    }

    // ------------------------------------------------------------------
    // DDL / DML
    // ------------------------------------------------------------------

    fn create_index(&mut self, name: &str, table: &str, column: &str) -> SdbResult<QueryResult> {
        let table_data = self.database.table(table)?.clone();
        let col_idx = table_data
            .column_index(column)
            .ok_or_else(|| SdbError::Semantic(format!("column {column} does not exist")))?;
        if self.faults.is_active(FaultId::PostgisCrashIndexAllEmpty) {
            let geometries: Vec<&Geometry> = table_data
                .live_rows()
                .filter_map(|(_, row)| row[col_idx].as_geometry())
                .collect();
            if !geometries.is_empty() && geometries.iter().all(|g| g.is_empty()) {
                coverage::hit("sdb.fault.crash_path");
                return Err(SdbError::Crash(
                    "GiST index build over a column of only EMPTY geometries".into(),
                ));
            }
        }
        let tree = build_rtree(&table_data, column);
        self.database.create_index(
            name,
            SpatialIndex {
                table: table.to_string(),
                column: column.to_string(),
                tree,
            },
        )?;
        Ok(QueryResult::none())
    }

    fn insert(
        &mut self,
        table: &str,
        columns: &[String],
        rows: &[Vec<Expr>],
    ) -> SdbResult<QueryResult> {
        let ctx = FunctionContext {
            profile: self.profile,
            faults: &self.faults.clone(),
        };
        let schema = self.database.table(table)?.columns.clone();
        let column_order: Vec<usize> = if columns.is_empty() {
            (0..schema.len()).collect()
        } else {
            columns
                .iter()
                .map(|c| {
                    schema
                        .iter()
                        .position(|(name, _)| name.eq_ignore_ascii_case(c))
                        .ok_or_else(|| SdbError::Semantic(format!("column {c} does not exist")))
                })
                .collect::<SdbResult<Vec<usize>>>()?
        };

        let mut materialized_rows = Vec::with_capacity(rows.len());
        for row_exprs in rows {
            if row_exprs.len() != column_order.len() {
                return Err(SdbError::Semantic(
                    "INSERT value count does not match column count".into(),
                ));
            }
            let mut row = vec![Value::Null; schema.len()];
            for (expr, &target) in row_exprs.iter().zip(column_order.iter()) {
                let value = evaluate_expr(expr, None, &self.database, &ctx)?;
                let value = coerce_for_column(value, schema[target].1, &ctx)?;
                row[target] = value;
            }
            materialized_rows.push(row);
        }

        let table_ref = self.database.table_mut(table)?;
        let base_slot = table_ref.rows.len();
        table_ref.rows.extend(materialized_rows);
        // Incremental index maintenance: append the new rows' envelopes
        // instead of rebuilding every tree (mutation workloads would turn a
        // rebuild into O(n) work per statement — and a rebuild would also
        // silently heal any staleness earlier mutations left behind).
        let new_rows: Vec<(usize, Vec<Value>)> = self
            .database
            .table(table)?
            .rows
            .iter()
            .enumerate()
            .skip(base_slot)
            .map(|(slot, row)| (slot, row.clone()))
            .collect();
        for idx in self.database.indexes_for_mut(table) {
            let Some(col_idx) = schema
                .iter()
                .position(|(name, _)| name.eq_ignore_ascii_case(&idx.column))
            else {
                continue;
            };
            for (slot, row) in &new_rows {
                let envelope = row
                    .get(col_idx)
                    .map(Database::value_envelope)
                    .unwrap_or_else(Envelope::empty);
                idx.tree.insert(envelope, *slot);
            }
        }
        Ok(QueryResult::none())
    }

    fn update(
        &mut self,
        table: &str,
        column: &str,
        value_expr: &Expr,
        where_clause: Option<&Expr>,
    ) -> SdbResult<QueryResult> {
        let ctx = FunctionContext {
            profile: self.profile,
            faults: &self.faults.clone(),
        };
        let table_data = self.database.table(table)?;
        let col_idx = table_data
            .column_index(column)
            .ok_or_else(|| SdbError::Semantic(format!("column {column} does not exist")))?;
        let column_type = table_data.columns[col_idx].1;
        // Generated workloads only use row-independent SET expressions; a
        // row-dependent one would need per-row evaluation, which no template
        // emits, so it surfaces as a semantic error here.
        let new_value = evaluate_expr(value_expr, None, &self.database, &ctx)?;
        let new_value = coerce_for_column(new_value, column_type, &ctx)?;
        let new_env = Database::value_envelope(&new_value);
        let targets = self.matching_row_slots(table, where_clause, &ctx)?;
        // The seeded stale-index fault: maintenance "forgets" the reinsert
        // when the new geometry reaches into the negative-x half-plane
        // (mirroring `gist_fault_drops_row`'s quantization criterion), so the
        // index keeps answering from the pre-update envelope. Only mutation
        // workloads can reach this path.
        let stale_fault = self.faults.is_active(FaultId::PostgisGistStaleOnMutation)
            && !new_env.is_empty()
            && new_env.min_x() < 0.0;
        let mut rows_updated = 0usize;
        for slot in targets {
            let table_ref = self.database.table_mut(table)?;
            let old_value =
                std::mem::replace(&mut table_ref.rows[slot][col_idx], new_value.clone());
            rows_updated += 1;
            let old_env = Database::value_envelope(&old_value);
            if stale_fault {
                coverage::hit("sdb.fault.logic_path");
                continue;
            }
            for idx in self.database.indexes_for_mut(table) {
                if !idx.column.eq_ignore_ascii_case(column) {
                    continue;
                }
                if !idx.tree.reinsert(&old_env, new_env, slot) {
                    // The entry was not under its old envelope (e.g. earlier
                    // faulty maintenance); insert under the new one so the
                    // correct path stays self-consistent.
                    idx.tree.insert(new_env, slot);
                }
            }
        }
        Ok(QueryResult::with_effect(ExecutionResult::Update {
            rows_updated,
        }))
    }

    fn delete(&mut self, table: &str, where_clause: Option<&Expr>) -> SdbResult<QueryResult> {
        let ctx = FunctionContext {
            profile: self.profile,
            faults: &self.faults.clone(),
        };
        let schema = self.database.table(table)?.columns.clone();
        let targets = self.matching_row_slots(table, where_clause, &ctx)?;
        let mut rows_deleted = 0usize;
        for slot in targets {
            let Some(old_row) = self.database.table_mut(table)?.tombstone(slot) else {
                continue;
            };
            rows_deleted += 1;
            // Deletes maintain every index incrementally; the slot stays
            // allocated (tombstoned) so the surviving entries' payloads —
            // row slots — remain valid.
            for idx in self.database.indexes_for_mut(table) {
                let Some(col_idx) = schema
                    .iter()
                    .position(|(name, _)| name.eq_ignore_ascii_case(&idx.column))
                else {
                    continue;
                };
                let envelope = old_row
                    .get(col_idx)
                    .map(Database::value_envelope)
                    .unwrap_or_else(Envelope::empty);
                idx.tree.remove(&envelope, &slot);
            }
        }
        Ok(QueryResult::with_effect(ExecutionResult::Delete {
            rows_deleted,
        }))
    }

    /// Row slots matched by a mutation's WHERE clause (all live slots when
    /// absent). The `column = <row-independent expr>` shape is matched
    /// structurally with the column's coercion applied to the probe, so
    /// geometry equality selects rows by exact value — `compare_values`
    /// deliberately has no geometry ordering. Other shapes evaluate through
    /// the general expression path.
    fn matching_row_slots(
        &self,
        table_name: &str,
        where_clause: Option<&Expr>,
        ctx: &FunctionContext,
    ) -> SdbResult<Vec<usize>> {
        let table = self.database.table(table_name)?;
        let Some(condition) = where_clause else {
            return Ok(table.live_rows().map(|(slot, _)| slot).collect());
        };
        if let Expr::Binary {
            op: BinaryOp::Eq,
            left,
            right,
        } = condition
        {
            if let Expr::Column {
                table: qualifier,
                column,
            } = left.as_ref()
            {
                let qualifier_matches = qualifier
                    .as_deref()
                    .is_none_or(|q| q.eq_ignore_ascii_case(table_name));
                if qualifier_matches {
                    if let Some(col_idx) = table.column_index(column) {
                        if let Ok(probe) = evaluate_expr(right, None, &self.database, ctx) {
                            let probe = coerce_for_column(probe, table.columns[col_idx].1, ctx)?;
                            return Ok(table
                                .live_rows()
                                .filter(|(_, row)| row[col_idx] == probe)
                                .map(|(slot, _)| slot)
                                .collect());
                        }
                    }
                }
            }
        }
        let table_ref = TableRef {
            table: table_name.to_string(),
            alias: table_name.to_string(),
        };
        let mut slots = Vec::new();
        for (slot, row) in table.live_rows() {
            let binding = RowBinding::single(&table_ref, table, row);
            if evaluate_expr(condition, Some(&binding), &self.database, ctx)?.is_truthy() {
                slots.push(slot);
            }
        }
        Ok(slots)
    }

    fn set(&mut self, name: &str, value_expr: &Expr) -> SdbResult<QueryResult> {
        let ctx = FunctionContext {
            profile: self.profile,
            faults: &self.faults.clone(),
        };
        let value = evaluate_expr(value_expr, None, &self.database, &ctx)?;
        if let Some(variable) = name.strip_prefix('@') {
            coverage::hit("sdb.exec.set_variable");
            self.database.set_variable(&format!("@{variable}"), value);
            return Ok(QueryResult::none());
        }
        coverage::hit("sdb.exec.set_setting");
        match name.to_ascii_lowercase().as_str() {
            "enable_seqscan" => self.enable_seqscan = value.is_truthy(),
            "enable_prepared" => self.enable_prepared = value.is_truthy(),
            other => {
                return Err(SdbError::Semantic(format!("unknown setting {other}")));
            }
        }
        Ok(QueryResult::none())
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    fn select(&mut self, select: &SelectStatement) -> SdbResult<QueryResult> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let inner = self.select_inner(select, &mut scratch);
        self.scratch = scratch;
        let mut result = inner?;
        // LIMIT caps *result* rows. The non-aggregate paths already
        // truncated their row sets before projection (so this is a no-op
        // there); aggregate and scalar selects produce their single row
        // first and are capped here, matching PostgreSQL's
        // `SELECT COUNT(*) ... LIMIT 0` returning zero rows.
        if let Some(limit) = select.limit {
            result.rows.truncate(limit);
        }
        Ok(result)
    }

    fn select_inner(
        &mut self,
        select: &SelectStatement,
        scratch: &mut ExecScratch,
    ) -> SdbResult<QueryResult> {
        let faults = self.faults.clone();
        let ctx = FunctionContext {
            profile: self.profile,
            faults: &faults,
        };
        match select.from.len() {
            0 => {
                coverage::hit("sdb.exec.scalar_select");
                let mut row = Vec::new();
                let mut columns = Vec::new();
                for (idx, item) in select.items.iter().enumerate() {
                    match item {
                        SelectItem::CountStar => {
                            row.push(Value::Int(1));
                            columns.push("count".to_string());
                        }
                        SelectItem::Expr(expr) => {
                            row.push(evaluate_expr(expr, None, &self.database, &ctx)?);
                            columns.push(format!("col{idx}"));
                        }
                    }
                }
                Ok(QueryResult {
                    columns,
                    rows: vec![row],
                    effect: None,
                })
            }
            1 => self.select_single_table(select, &ctx),
            2 => self.select_join(select, &ctx, scratch),
            n => Err(SdbError::Semantic(format!(
                "queries over {n} tables are not supported"
            ))),
        }
    }

    fn select_single_table(
        &self,
        select: &SelectStatement,
        ctx: &FunctionContext,
    ) -> SdbResult<QueryResult> {
        coverage::hit("sdb.exec.filter_scan");
        let table_ref = &select.from[0];
        let table = self.database.table(&table_ref.table)?;
        let condition = combine_conditions(&select.join_on, &select.where_clause);
        let pure_count = is_pure_count(select);

        // KNN fast path: `ORDER BY ST_Distance(col, <origin>) LIMIT k` with
        // sequential scans disabled runs a best-first nearest-neighbour
        // search over the GiST-analog index instead of sorting a full scan.
        if !pure_count {
            if let Some(rows) = self.try_index_knn(select, table_ref, table, &condition, ctx)? {
                return project(select, table_ref, table, &rows, &self.database, ctx);
            }
        }

        // Try an index scan for `col ~= <geometry>` filters when sequential
        // scans are disabled (Listing 8's scenario).
        let candidate_rows: Vec<usize> =
            if let Some(rows) = self.try_index_filter(table_ref, table, condition.as_ref(), ctx)? {
                rows
            } else {
                table.live_rows().map(|(slot, _)| slot).collect()
            };

        let mut matching = Vec::new();
        for row_idx in candidate_rows {
            let row = &table.rows[row_idx];
            if row.is_empty() {
                // Tombstoned slot (or a stale index entry pointing at one).
                continue;
            }
            let keep = match &condition {
                None => true,
                Some(expr) => {
                    let binding = RowBinding::single(table_ref, table, row);
                    evaluate_expr(expr, Some(&binding), &self.database, ctx)?.is_truthy()
                }
            };
            if keep {
                matching.push(row.clone());
            }
        }
        if !pure_count {
            matching = order_and_limit(select, matching, |expr, row| {
                let binding = RowBinding::single(table_ref, table, row);
                order_key(expr, &binding, &self.database, ctx)
            })?;
        }
        project(select, table_ref, table, &matching, &self.database, ctx)
    }

    /// The index-accelerated nearest-neighbour path. Returns `None` when the
    /// query does not have the KNN shape (`SELECT ... FROM t ORDER BY
    /// ST_Distance(t.col, <row-independent origin>) LIMIT k` with no filter),
    /// sequential scans are enabled, or the column carries no spatial index.
    fn try_index_knn(
        &self,
        select: &SelectStatement,
        table_ref: &TableRef,
        table: &Table,
        condition: &Option<Expr>,
        ctx: &FunctionContext,
    ) -> SdbResult<Option<Vec<Vec<Value>>>> {
        if self.enable_seqscan || condition.is_some() {
            return Ok(None);
        }
        let Some(order) = &select.order_by else {
            return Ok(None);
        };
        let Some(k) = select.limit else {
            return Ok(None);
        };
        if order.descending {
            return Ok(None);
        }
        let Expr::Function { name, args } = &order.expr else {
            return Ok(None);
        };
        if !name.eq_ignore_ascii_case("ST_DISTANCE") || args.len() != 2 {
            return Ok(None);
        }
        let Expr::Column {
            table: qualifier,
            column,
        } = &args[0]
        else {
            return Ok(None);
        };
        if let Some(qualifier) = qualifier {
            if !qualifier.eq_ignore_ascii_case(&table_ref.alias) {
                return Ok(None);
            }
        }
        if table.column_index(column).is_none() {
            return Ok(None);
        }
        let Some(index) = self.database.index_on(&table_ref.table, column) else {
            return Ok(None);
        };
        // The origin must be evaluable without a row binding; anything else
        // (another column, an unknown variable) falls back to the sort path.
        let Ok(origin) = evaluate_expr(&args[1], None, &self.database, ctx) else {
            return Ok(None);
        };
        let Some(origin_geom) = origin.as_geometry() else {
            return Ok(None);
        };
        let origin_env = origin_geom.envelope();
        if origin_env.is_empty() {
            return Ok(None);
        }
        coverage::hit("sdb.exec.knn_index_scan");
        let gist_fault = self.faults.is_active(FaultId::PostgisGistIndexDropsRows);
        let dropped_by_fault =
            |row_idx: usize| -> bool { gist_fault && gist_fault_drops_row(&table.rows[row_idx]) };
        let mut eval_error = None;
        let neighbours = index.tree.nearest_with(&origin_env, k, |&row_idx| {
            if dropped_by_fault(row_idx) {
                coverage::hit("sdb.fault.logic_path");
                return None;
            }
            let row = &table.rows[row_idx];
            if row.is_empty() {
                // Stale index entry pointing at a tombstoned slot.
                return None;
            }
            let binding = RowBinding::single(table_ref, table, row);
            match evaluate_expr(&order.expr, Some(&binding), &self.database, ctx) {
                // NaN distances are canonicalized to the positive quiet NaN
                // so the tree's `total_cmp` priority queue orders them last,
                // matching `compare_doubles` (a negative NaN would otherwise
                // sort *first* under `total_cmp`).
                Ok(value) => value
                    .as_double()
                    .map(|d| if d.is_nan() { f64::NAN } else { d }),
                Err(error) => {
                    eval_error = Some(error);
                    None
                }
            }
        });
        if let Some(error) = eval_error {
            return Err(error);
        }
        // The tree returns boundary ties beyond `k`; re-apply the sequential
        // path's deterministic order (distance via the engine-wide
        // `compare_doubles` semantics, then row position) and cut. Using the
        // shared comparator keeps NaN distances ordered exactly like the
        // seqscan sort: after every defined key, before NULL keys.
        let mut picked: Vec<(f64, usize)> = neighbours
            .into_iter()
            .map(|(distance, &row_idx)| (distance, row_idx))
            .collect();
        picked.sort_by(|a, b| compare_doubles(a.0, b.0).then(a.1.cmp(&b.1)));
        picked.truncate(k);
        let mut row_indices: Vec<usize> = picked.into_iter().map(|(_, idx)| idx).collect();
        // Rows whose sort key is NULL (EMPTY geometries, faulty NULL
        // distances) sort after every defined key in the sequential path;
        // pad with them in row order when the limit is not yet reached.
        if row_indices.len() < k {
            for row_idx in 0..table.rows.len() {
                if row_indices.len() == k {
                    break;
                }
                if !table.is_live(row_idx)
                    || row_indices.contains(&row_idx)
                    || dropped_by_fault(row_idx)
                {
                    continue;
                }
                let binding = RowBinding::single(table_ref, table, &table.rows[row_idx]);
                let key =
                    evaluate_expr(&order.expr, Some(&binding), &self.database, ctx)?.as_double();
                if key.is_none() {
                    row_indices.push(row_idx);
                }
            }
        }
        Ok(Some(
            row_indices
                .into_iter()
                .map(|row_idx| table.rows[row_idx].clone())
                .collect(),
        ))
    }

    /// Index-accelerated filtering for a single-table query. Returns `None`
    /// when the index cannot be used (no index, seqscan enabled, or an
    /// unsupported filter shape).
    fn try_index_filter(
        &self,
        table_ref: &TableRef,
        table: &Table,
        condition: Option<&Expr>,
        ctx: &FunctionContext,
    ) -> SdbResult<Option<Vec<usize>>> {
        if self.enable_seqscan {
            return Ok(None);
        }
        let Some(Expr::Binary {
            op: BinaryOp::SameBox,
            left,
            right,
        }) = condition
        else {
            return Ok(None);
        };
        let Expr::Column { column, .. } = left.as_ref() else {
            return Ok(None);
        };
        let Some(index) = self.database.index_on(&table_ref.table, column) else {
            return Ok(None);
        };
        let probe = evaluate_expr(right, None, &self.database, ctx)?;
        let Some(probe_geom) = probe.as_geometry() else {
            return Ok(None);
        };
        coverage::hit("sdb.exec.join_index_scan");
        let probe_env = probe_geom.envelope();
        let mut rows: Vec<usize> = index
            .tree
            .query_same_box(&probe_env)
            .into_iter()
            .copied()
            .collect();
        if probe_env.is_empty() {
            // Correct behaviour: EMPTY geometries all share the empty
            // bounding box, so they match an EMPTY probe. The seeded GiST
            // fault omits this compensation (Listing 8: count 0 instead of 1).
            if !self.faults.is_active(FaultId::PostgisGistIndexDropsRows) {
                rows.extend(index.tree.empty_envelope_entries().iter().copied());
            } else {
                coverage::hit("sdb.fault.logic_path");
            }
        }
        if self.faults.is_active(FaultId::PostgisGistIndexDropsRows) {
            // The faulty scan also drops geometries lying in the negative
            // quadrant (a key-quantization bug).
            rows.retain(|&row_idx| !gist_fault_drops_row(&table.rows[row_idx]));
        }
        rows.sort_unstable();
        Ok(Some(rows))
    }

    fn select_join(
        &self,
        select: &SelectStatement,
        ctx: &FunctionContext,
        scratch: &mut ExecScratch,
    ) -> SdbResult<QueryResult> {
        let left_ref = &select.from[0];
        let right_ref = &select.from[1];
        let left_table = self.database.table(&left_ref.table)?;
        let right_table = self.database.table(&right_ref.table)?;
        let condition = combine_conditions(&select.join_on, &select.where_clause);

        // Identify the join shapes used by Spatter's query templates: a
        // single named predicate or distance predicate over the two geometry
        // columns (in either argument order).
        let join_plan = condition.as_ref().and_then(|expr| {
            join_plan_shape(
                expr,
                left_ref,
                right_ref,
                left_table,
                right_table,
                &self.database,
                ctx,
            )
        });

        scratch.pairs.clear();
        let mut planned = false;
        match &join_plan {
            Some(JoinPlan::Predicate(join)) => {
                // The envelope-intersection index probe is only a sound
                // prefilter for predicates that imply envelope interaction;
                // ST_Disjoint holds exactly on the pairs the probe prunes, so
                // it falls through to the nested loop even with seqscan
                // disabled (real engines give it no index operator support
                // either).
                if !self.enable_seqscan && join.predicate.has_index_support() {
                    if let Some(index) =
                        self.database.index_on(&right_ref.table, &join.right_column)
                    {
                        coverage::hit("sdb.exec.join_index_scan");
                        self.index_join(join, left_table, right_table, index, ctx, scratch)?;
                        planned = true;
                    }
                }
                if !planned && self.enable_prepared {
                    coverage::hit("sdb.exec.join_prepared");
                    self.prepared_join(join, left_table, right_table, ctx, scratch)?;
                    planned = true;
                }
            }
            Some(JoinPlan::Distance(join)) => {
                if !self.enable_seqscan {
                    if let Some(index) =
                        self.database.index_on(&right_ref.table, &join.right_column)
                    {
                        coverage::hit("sdb.exec.join_distance_index");
                        self.distance_index_join(
                            join,
                            left_table,
                            right_table,
                            index,
                            ctx,
                            scratch,
                        );
                        planned = true;
                    }
                }
                if !planned && self.enable_prepared {
                    coverage::hit("sdb.exec.join_distance_prepared");
                    self.distance_prepared_join(join, left_table, right_table, ctx, scratch);
                    planned = true;
                }
            }
            None => {}
        }

        if !planned {
            // General nested-loop join.
            coverage::hit("sdb.exec.join_nested_loop");
            for (li, lrow) in left_table.live_rows() {
                for (ri, rrow) in right_table.live_rows() {
                    let keep = match &condition {
                        None => true,
                        Some(expr) => {
                            let binding = RowBinding::pair(
                                left_ref,
                                left_table,
                                lrow,
                                right_ref,
                                right_table,
                                rrow,
                            );
                            evaluate_expr(expr, Some(&binding), &self.database, ctx)?.is_truthy()
                        }
                    };
                    if keep {
                        scratch.pairs.push((li, ri));
                    }
                }
            }
        }

        let mut matching = std::mem::take(&mut scratch.pairs);
        if !is_pure_count(select) {
            matching = order_and_limit(select, matching, |expr, &(li, ri)| {
                let binding = RowBinding::pair(
                    left_ref,
                    left_table,
                    &left_table.rows[li],
                    right_ref,
                    right_table,
                    &right_table.rows[ri],
                );
                order_key(expr, &binding, &self.database, ctx)
            })?;
        }
        let result = build_join_result(
            select,
            left_ref,
            right_ref,
            left_table,
            right_table,
            &matching,
            &self.database,
            ctx,
        );
        // Hand the pair buffer (or the ordered rebuild of it) back for reuse
        // by the next join.
        scratch.pairs = matching;
        result
    }

    /// Index nested-loop join: probe the inner index with each outer
    /// geometry's envelope, then verify the predicate on the candidates.
    fn index_join(
        &self,
        join: &PredicateJoin,
        left_table: &Table,
        right_table: &Table,
        index: &SpatialIndex,
        ctx: &FunctionContext,
        scratch: &mut ExecScratch,
    ) -> SdbResult<()> {
        let gist_fault = self.faults.is_active(FaultId::PostgisGistIndexDropsRows);
        let ExecScratch {
            candidates, pairs, ..
        } = scratch;
        for (li, lrow) in left_table.live_rows() {
            let Some(left_geom) = lrow[join.left_column_idx].as_geometry() else {
                continue;
            };
            let probe = left_geom.envelope();
            index.tree.query_intersects_into(&probe, candidates);
            // EMPTY geometries never appear in envelope queries; the correct
            // engine still has to consider them for predicates that can hold
            // on EMPTY operands (none of the supported ones can, so nothing
            // is added), but the faulty engine additionally drops
            // negative-quadrant rows it should have returned.
            if gist_fault {
                coverage::hit("sdb.fault.logic_path");
                candidates.retain(|&ri| !gist_fault_drops_row(&right_table.rows[ri]));
            }
            candidates.sort_unstable();
            for &ri in candidates.iter() {
                // `.get` guards stale index entries referencing tombstones.
                let Some(right_geom) = right_table.rows[ri]
                    .get(join.right_column_idx)
                    .and_then(|v| v.as_geometry())
                else {
                    continue;
                };
                if join.evaluate(left_geom, right_geom, ctx)? {
                    pairs.push((li, ri));
                }
            }
        }
        Ok(())
    }

    /// Prepared-geometry join: the outer geometry is prepared once and reused
    /// for every inner row (the component of Listing 7's bug).
    fn prepared_join(
        &self,
        join: &PredicateJoin,
        left_table: &Table,
        right_table: &Table,
        ctx: &FunctionContext,
        scratch: &mut ExecScratch,
    ) -> SdbResult<()> {
        let duplicate_fault = self.faults.is_active(FaultId::GeosPreparedDuplicateDropped);
        for (li, lrow) in left_table.live_rows() {
            let Some(left_geom) = lrow[join.left_column_idx].as_geometry() else {
                continue;
            };
            // The prepare step itself; the predicate verdicts below go through
            // the shared library so that its seeded faults (and crashes)
            // surface on this path too, keeping the reference engine's
            // prepared/non-prepared equivalence.
            let _prepared = PreparedGeometry::new(left_geom.clone());
            let mut matched_shapes: Vec<String> = Vec::new();
            for (ri, rrow) in right_table.live_rows() {
                let Some(right_geom) = rrow[join.right_column_idx].as_geometry() else {
                    continue;
                };
                let right_wkt = spatter_geom::wkt::write_wkt(right_geom);
                if duplicate_fault
                    && matched_shapes.contains(&right_wkt)
                    && spatter_geom::wkt::write_wkt(left_geom) != right_wkt
                {
                    // The faulty prepared cache treats a repeated inner
                    // geometry as already processed and skips it.
                    coverage::hit("sdb.fault.logic_path");
                    continue;
                }
                let held = join.evaluate(left_geom, right_geom, ctx)?;
                if held {
                    matched_shapes.push(right_wkt);
                    scratch.pairs.push((li, ri));
                }
            }
        }
        Ok(())
    }

    /// Distance index join: probe the inner R-tree for entries within `d` of
    /// each outer geometry's envelope — the "envelope expanded by `d`" probe
    /// expressed as a squared-distance leaf test rather than literal
    /// `max_x + d` arithmetic, so no rounding slack is introduced — then
    /// verify the candidates through the shared distance kernel.
    fn distance_index_join(
        &self,
        join: &DistanceJoin,
        left_table: &Table,
        right_table: &Table,
        index: &SpatialIndex,
        ctx: &FunctionContext,
        scratch: &mut ExecScratch,
    ) {
        let gist_fault = self.faults.is_active(FaultId::PostgisGistIndexDropsRows);
        let d = join.distance;
        // A negative (or NaN) threshold never holds; probe with a NaN radius,
        // which matches nothing, instead of the spuriously positive d².
        let d_sq = if d >= 0.0 { d * d } else { f64::NAN };
        let ExecScratch {
            candidates, pairs, ..
        } = scratch;
        for (li, lrow) in left_table.live_rows() {
            let Some(left_geom) = lrow[join.left_column_idx].as_geometry() else {
                continue;
            };
            let probe = left_geom.envelope();
            index
                .tree
                .query_within_distance_into(&probe, d_sq, candidates);
            // The probe's leaf test is exactly the distance kernel's envelope
            // rejection test, so pruned pairs are pairs the kernel would
            // reject: EMPTY inner geometries never appear (distance to EMPTY
            // never holds) and nothing else is lost. The faulty index
            // additionally drops negative-quadrant rows it should have
            // returned.
            if gist_fault {
                coverage::hit("sdb.fault.logic_path");
                candidates.retain(|&ri| !gist_fault_drops_row(&right_table.rows[ri]));
            }
            candidates.sort_unstable();
            for &ri in candidates.iter() {
                // `.get` guards stale index entries referencing tombstones.
                let Some(right_geom) = right_table.rows[ri]
                    .get(join.right_column_idx)
                    .and_then(|v| v.as_geometry())
                else {
                    continue;
                };
                if join.evaluate(left_geom, right_geom, ctx) {
                    pairs.push((li, ri));
                }
            }
        }
    }

    /// Prepared distance join: the inner table's envelopes are computed once
    /// and cached, then each pair is screened on the cached envelopes before
    /// the exact kernel runs. The screen is the kernel's own first test, so
    /// it can only skip pairs the kernel would reject.
    fn distance_prepared_join(
        &self,
        join: &DistanceJoin,
        left_table: &Table,
        right_table: &Table,
        ctx: &FunctionContext,
        scratch: &mut ExecScratch,
    ) {
        let d = join.distance;
        if d.is_nan() || d < 0.0 {
            // Negative or NaN thresholds never hold for any pair.
            return;
        }
        let d_sq = d * d;
        let ExecScratch {
            right_envelopes,
            pairs,
            ..
        } = scratch;
        right_envelopes.clear();
        // Tombstoned rows get an EMPTY envelope (`.get` on the empty row),
        // which the screen rejects with its infinite distance.
        right_envelopes.extend(right_table.rows.iter().map(|rrow| {
            rrow.get(join.right_column_idx)
                .and_then(|v| v.as_geometry())
                .map(|g| g.envelope())
                .unwrap_or_else(Envelope::empty)
        }));
        for (li, lrow) in left_table.live_rows() {
            let Some(left_geom) = lrow[join.left_column_idx].as_geometry() else {
                continue;
            };
            let left_env = left_geom.envelope();
            for (ri, rrow) in right_table.rows.iter().enumerate() {
                // The kernel rejects pairs with an EMPTY side or with boxes
                // further apart than `d` outright (`distance_sq` of an EMPTY
                // envelope is infinite, which covers both cases; `>` is false
                // for a NaN/overflowed d², disabling the screen rather than
                // mis-pruning).
                if left_env.distance_sq(&right_envelopes[ri]) > d_sq {
                    continue;
                }
                let Some(right_geom) = rrow
                    .get(join.right_column_idx)
                    .and_then(|v| v.as_geometry())
                else {
                    continue;
                };
                if join.evaluate(left_geom, right_geom, ctx) {
                    pairs.push((li, ri));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

/// Bindings from table aliases to the current row.
struct RowBinding<'a> {
    entries: Vec<(String, &'a Table, &'a [Value])>,
}

impl<'a> RowBinding<'a> {
    fn single(table_ref: &TableRef, table: &'a Table, row: &'a [Value]) -> Self {
        RowBinding {
            entries: vec![(table_ref.alias.clone(), table, row)],
        }
    }

    fn pair(
        left_ref: &TableRef,
        left: &'a Table,
        left_row: &'a [Value],
        right_ref: &TableRef,
        right: &'a Table,
        right_row: &'a [Value],
    ) -> Self {
        RowBinding {
            entries: vec![
                (left_ref.alias.clone(), left, left_row),
                (right_ref.alias.clone(), right, right_row),
            ],
        }
    }

    fn lookup(&self, table: Option<&str>, column: &str) -> Option<Value> {
        for (alias, table_data, row) in &self.entries {
            if let Some(qualifier) = table {
                if !alias.eq_ignore_ascii_case(qualifier) {
                    continue;
                }
            }
            if let Some(idx) = table_data.column_index(column) {
                return Some(row[idx].clone());
            }
            if table.is_some() {
                return None;
            }
        }
        None
    }
}

fn evaluate_expr(
    expr: &Expr,
    binding: Option<&RowBinding<'_>>,
    database: &Database,
    ctx: &FunctionContext,
) -> SdbResult<Value> {
    match expr {
        Expr::Literal(value) => Ok(value.clone()),
        Expr::Variable(name) => {
            coverage::hit("sdb.expr.variable");
            database
                .variable(&format!("@{name}"))
                .cloned()
                .ok_or_else(|| SdbError::Semantic(format!("unknown variable @{name}")))
        }
        Expr::Column { table, column } => {
            coverage::hit("sdb.expr.column");
            binding
                .and_then(|b| b.lookup(table.as_deref(), column))
                .ok_or_else(|| {
                    SdbError::Semantic(format!(
                        "unknown column {}{column}",
                        table.as_ref().map(|t| format!("{t}.")).unwrap_or_default()
                    ))
                })
        }
        Expr::Cast { expr, target } => {
            let inner = evaluate_expr(expr, binding, database, ctx)?;
            match target.as_str() {
                "geometry" => match inner {
                    Value::Geometry(g) => Ok(Value::Geometry(g)),
                    Value::Text(text) => {
                        Ok(Value::Geometry(functions::parse_geometry_text(&text, ctx)?))
                    }
                    other => Err(SdbError::Execution(format!(
                        "cannot cast {} to geometry",
                        other.type_name()
                    ))),
                },
                "int" | "integer" | "bigint" => inner
                    .as_int()
                    .or_else(|| inner.as_text().and_then(|t| t.trim().parse::<i64>().ok()))
                    .map(Value::Int)
                    .ok_or_else(|| SdbError::Execution("cannot cast to integer".into())),
                // Text parses like PostgreSQL's `'NaN'::float8` /
                // `'Infinity'::float8`: non-finite spellings are legal and
                // flow into the engine-wide `compare_doubles` semantics.
                "double" | "float" => inner
                    .as_double()
                    .or_else(|| inner.as_text().and_then(|t| t.trim().parse::<f64>().ok()))
                    .map(Value::Double)
                    .ok_or_else(|| SdbError::Execution("cannot cast to double".into())),
                "text" | "varchar" => Ok(Value::Text(inner.to_string())),
                other => Err(SdbError::Execution(format!(
                    "unsupported cast target {other}"
                ))),
            }
        }
        Expr::Function { name, args } => {
            let mut evaluated = Vec::with_capacity(args.len());
            for arg in args {
                evaluated.push(evaluate_expr(arg, binding, database, ctx)?);
            }
            functions::evaluate(name, &evaluated, ctx)
        }
        Expr::Not(inner) => {
            coverage::hit("sdb.expr.logical");
            let value = evaluate_expr(inner, binding, database, ctx)?;
            Ok(Value::Bool(!value.is_truthy()))
        }
        Expr::Binary { op, left, right } => {
            let lhs = evaluate_expr(left, binding, database, ctx)?;
            let rhs = evaluate_expr(right, binding, database, ctx)?;
            evaluate_binary(*op, lhs, rhs, ctx)
        }
    }
}

fn evaluate_binary(
    op: BinaryOp,
    lhs: Value,
    rhs: Value,
    ctx: &FunctionContext,
) -> SdbResult<Value> {
    match op {
        BinaryOp::And => {
            coverage::hit("sdb.expr.logical");
            Ok(Value::Bool(lhs.is_truthy() && rhs.is_truthy()))
        }
        BinaryOp::Or => {
            coverage::hit("sdb.expr.logical");
            Ok(Value::Bool(lhs.is_truthy() || rhs.is_truthy()))
        }
        BinaryOp::SameBox => {
            coverage::hit("sdb.expr.samebox");
            let a = coerce_geometry(lhs, ctx)?;
            let b = coerce_geometry(rhs, ctx)?;
            Ok(Value::Bool(a.envelope().same_box(&b.envelope())))
        }
        BinaryOp::Eq
        | BinaryOp::NotEq
        | BinaryOp::Lt
        | BinaryOp::LtEq
        | BinaryOp::Gt
        | BinaryOp::GtEq => {
            coverage::hit("sdb.expr.comparison");
            let ordering = compare_values(&lhs, &rhs)?;
            let result = match op {
                BinaryOp::Eq => ordering == std::cmp::Ordering::Equal,
                BinaryOp::NotEq => ordering != std::cmp::Ordering::Equal,
                BinaryOp::Lt => ordering == std::cmp::Ordering::Less,
                BinaryOp::LtEq => ordering != std::cmp::Ordering::Greater,
                BinaryOp::Gt => ordering == std::cmp::Ordering::Greater,
                BinaryOp::GtEq => ordering != std::cmp::Ordering::Less,
                _ => unreachable!("comparison operators only"),
            };
            Ok(Value::Bool(result))
        }
    }
}

/// The engine-wide total order on doubles, following PostgreSQL's `float8`
/// semantics: every NaN compares equal to every other NaN and **greater than
/// every non-NaN value** (so NaN sorts last among defined keys, before SQL
/// NULL). Shared by WHERE-clause comparisons ([`compare_values`]), the
/// `ORDER BY` sort ([`compare_order_keys`]) and the index KNN path's final
/// ordering, so the same NaN-producing expression behaves identically in a
/// filter, a sort key and a nearest-neighbour distance — it is never a hard
/// error in one path and a silently ordered value in another.
fn compare_doubles(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => a.partial_cmp(&b).expect("non-NaN doubles are ordered"),
    }
}

fn compare_values(lhs: &Value, rhs: &Value) -> SdbResult<std::cmp::Ordering> {
    if let (Some(a), Some(b)) = (lhs.as_double(), rhs.as_double()) {
        return Ok(compare_doubles(a, b));
    }
    if let (Value::Text(a), Value::Text(b)) = (lhs, rhs) {
        return Ok(a.cmp(b));
    }
    Err(SdbError::Execution(format!(
        "cannot compare {} with {}",
        lhs.type_name(),
        rhs.type_name()
    )))
}

fn coerce_geometry(value: Value, ctx: &FunctionContext) -> SdbResult<Geometry> {
    match value {
        Value::Geometry(g) => Ok(g),
        Value::Text(text) => functions::parse_geometry_text(&text, ctx),
        other => Err(SdbError::Execution(format!(
            "expected a geometry, got {}",
            other.type_name()
        ))),
    }
}

fn coerce_for_column(
    value: Value,
    column_type: ColumnType,
    ctx: &FunctionContext,
) -> SdbResult<Value> {
    match column_type {
        ColumnType::Geometry => match value {
            Value::Null => Ok(Value::Null),
            other => Ok(Value::Geometry(coerce_geometry(other, ctx)?)),
        },
        ColumnType::Integer => Ok(value.as_int().map(Value::Int).unwrap_or(Value::Null)),
        ColumnType::Double => Ok(value.as_double().map(Value::Double).unwrap_or(Value::Null)),
        ColumnType::Boolean => Ok(Value::Bool(value.is_truthy())),
        ColumnType::Text => Ok(Value::Text(value.to_string())),
    }
}

// ---------------------------------------------------------------------------
// Join helpers
// ---------------------------------------------------------------------------

/// The canonical "predicate join" shape of Spatter's query template:
/// `<Predicate>(left.geom, right.geom)`, or the commuted
/// `<Predicate>(right.geom, left.geom)`.
struct PredicateJoin {
    predicate: NamedPredicate,
    left_column_idx: usize,
    right_column_idx: usize,
    right_column: String,
    /// The SQL spelled the right table's column as the first argument.
    /// Verdicts are always computed in the original SQL argument order —
    /// seeded faults are argument-order sensitive, so a commuted join must
    /// behave exactly like the nested loop it replaces.
    swapped: bool,
}

impl PredicateJoin {
    fn evaluate(
        &self,
        left_geom: &Geometry,
        right_geom: &Geometry,
        ctx: &FunctionContext,
    ) -> SdbResult<bool> {
        if self.swapped {
            functions::evaluate_predicate(self.predicate, right_geom, left_geom, ctx)
        } else {
            functions::evaluate_predicate(self.predicate, left_geom, right_geom, ctx)
        }
    }
}

/// The distance-join shape: `ST_DWithin(left.geom, right.geom, d)` /
/// `ST_DFullyWithin(...)` with a row-independent third argument, in either
/// argument order.
struct DistanceJoin {
    kind: DistancePredicate,
    distance: f64,
    left_column_idx: usize,
    right_column_idx: usize,
    right_column: String,
    /// See [`PredicateJoin::swapped`]; the `PostgisDFullyWithinSmallCoords`
    /// fault triggers on the first argument as written.
    swapped: bool,
}

impl DistanceJoin {
    fn evaluate(&self, left_geom: &Geometry, right_geom: &Geometry, ctx: &FunctionContext) -> bool {
        if self.swapped {
            functions::evaluate_distance_predicate(
                self.kind,
                right_geom,
                left_geom,
                self.distance,
                ctx,
            )
        } else {
            functions::evaluate_distance_predicate(
                self.kind,
                left_geom,
                right_geom,
                self.distance,
                ctx,
            )
        }
    }
}

/// A recognized join condition with a dedicated physical plan.
enum JoinPlan {
    Predicate(PredicateJoin),
    Distance(DistanceJoin),
}

/// Matches a pair of column expressions against the two join aliases, in
/// either order. Returns the left-table column, the right-table column, and
/// whether the SQL spelled the right table's column first.
fn join_column_pair<'a>(
    first: &'a Expr,
    second: &'a Expr,
    left_ref: &TableRef,
    right_ref: &TableRef,
) -> Option<(&'a str, &'a str, bool)> {
    let (
        Expr::Column {
            table: ft,
            column: fc,
        },
        Expr::Column {
            table: st,
            column: sc,
        },
    ) = (first, second)
    else {
        return None;
    };
    let ft = ft.as_deref()?;
    let st = st.as_deref()?;
    if ft.eq_ignore_ascii_case(&left_ref.alias) && st.eq_ignore_ascii_case(&right_ref.alias) {
        return Some((fc, sc, false));
    }
    if ft.eq_ignore_ascii_case(&right_ref.alias) && st.eq_ignore_ascii_case(&left_ref.alias) {
        return Some((sc, fc, true));
    }
    None
}

fn join_plan_shape(
    expr: &Expr,
    left_ref: &TableRef,
    right_ref: &TableRef,
    left_table: &Table,
    right_table: &Table,
    database: &Database,
    ctx: &FunctionContext,
) -> Option<JoinPlan> {
    let Expr::Function { name, args } = expr else {
        return None;
    };
    if let Some(predicate) = NamedPredicate::from_function_name(name) {
        if args.len() != 2 {
            return None;
        }
        let (lc, rc, swapped) = join_column_pair(&args[0], &args[1], left_ref, right_ref)?;
        return Some(JoinPlan::Predicate(PredicateJoin {
            predicate,
            left_column_idx: left_table.column_index(lc)?,
            right_column_idx: right_table.column_index(rc)?,
            right_column: rc.to_string(),
            swapped,
        }));
    }
    let kind = match name.to_ascii_uppercase().as_str() {
        "ST_DWITHIN" => DistancePredicate::DWithin,
        "ST_DFULLYWITHIN" => DistancePredicate::DFullyWithin,
        _ => return None,
    };
    if !plan::distance_join_enabled() || args.len() != 3 {
        return None;
    }
    // Profiles that lack the function must keep erroring through the general
    // expression path rather than silently executing the kernel.
    if !ctx.profile.supports_function(kind.function_name()) {
        return None;
    }
    let (lc, rc, swapped) = join_column_pair(&args[0], &args[1], left_ref, right_ref)?;
    // The threshold must be row independent (constant folding); anything else
    // — another column, an unknown variable, a non-numeric value — falls back
    // to the nested loop, which reproduces today's behaviour including its
    // errors.
    let distance = evaluate_expr(&args[2], None, database, ctx)
        .ok()?
        .as_double()?;
    Some(JoinPlan::Distance(DistanceJoin {
        kind,
        distance,
        left_column_idx: left_table.column_index(lc)?,
        right_column_idx: right_table.column_index(rc)?,
        right_column: rc.to_string(),
        swapped,
    }))
}

/// Whether the select is a bare aggregate (`SELECT COUNT(*)`): ordering is
/// meaningless and `LIMIT` must not shrink the counted set — it caps the
/// single result row instead (applied centrally in `select`).
fn is_pure_count(select: &SelectStatement) -> bool {
    select.items.len() == 1 && select.items[0] == SelectItem::CountStar
}

/// The `PostgisGistIndexDropsRows` drop criterion, shared by every index
/// path (window filter, predicate join, KNN scan) so the three scans
/// simulate one fault: the faulty index loses rows whose non-EMPTY
/// geometries reach into the negative-x half-plane.
fn gist_fault_drops_row(row: &[Value]) -> bool {
    !row.iter()
        .filter_map(|v| v.as_geometry())
        .all(|g| g.envelope().is_empty() || g.envelope().min_x() >= 0.0)
}

/// Applies the select's `ORDER BY` (stable sort, NULL keys last) and then
/// `LIMIT` to a list of matched items; `key_of` evaluates the sort key of
/// one item against the given key expression. Shared by the single-table
/// and join paths so their ordering semantics can never diverge.
fn order_and_limit<T>(
    select: &SelectStatement,
    mut items: Vec<T>,
    mut key_of: impl FnMut(&Expr, &T) -> SdbResult<Option<f64>>,
) -> SdbResult<Vec<T>> {
    if let Some(order) = &select.order_by {
        coverage::hit("sdb.exec.order_by");
        let mut keyed = Vec::with_capacity(items.len());
        for (pos, item) in items.into_iter().enumerate() {
            let key = key_of(&order.expr, &item)?;
            keyed.push((key, pos, item));
        }
        keyed.sort_by(|a, b| compare_order_keys(&a.0, a.1, &b.0, b.1, order.descending));
        items = keyed.into_iter().map(|(_, _, item)| item).collect();
    }
    if let Some(limit) = select.limit {
        coverage::hit("sdb.exec.limit");
        items.truncate(limit);
    }
    Ok(items)
}

/// Evaluates an `ORDER BY` key for one row binding. Keys must be numeric or
/// NULL — the KNN template's `ST_Distance` key is the motivating case.
fn order_key(
    expr: &Expr,
    binding: &RowBinding<'_>,
    database: &Database,
    ctx: &FunctionContext,
) -> SdbResult<Option<f64>> {
    match evaluate_expr(expr, Some(binding), database, ctx)? {
        Value::Null => Ok(None),
        value => value.as_double().map(Some).ok_or_else(|| {
            SdbError::Execution(format!(
                "ORDER BY key must be numeric, got {}",
                value.type_name()
            ))
        }),
    }
}

/// Sort comparator for `ORDER BY`: NULL keys last (in input order), defined
/// keys by value with the input position as the stability tie-break.
fn compare_order_keys(
    a: &Option<f64>,
    a_pos: usize,
    b: &Option<f64>,
    b_pos: usize,
    descending: bool,
) -> std::cmp::Ordering {
    let by_key = match (a, b) {
        (Some(x), Some(y)) => {
            let ordering = compare_doubles(*x, *y);
            if descending {
                ordering.reverse()
            } else {
                ordering
            }
        }
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => std::cmp::Ordering::Equal,
    };
    by_key.then(a_pos.cmp(&b_pos))
}

fn combine_conditions(join_on: &Option<Expr>, where_clause: &Option<Expr>) -> Option<Expr> {
    match (join_on, where_clause) {
        (None, None) => None,
        (Some(a), None) => Some(a.clone()),
        (None, Some(b)) => Some(b.clone()),
        (Some(a), Some(b)) => Some(Expr::Binary {
            op: BinaryOp::And,
            left: Box::new(a.clone()),
            right: Box::new(b.clone()),
        }),
    }
}

fn project(
    select: &SelectStatement,
    table_ref: &TableRef,
    table: &Table,
    rows: &[Vec<Value>],
    database: &Database,
    ctx: &FunctionContext,
) -> SdbResult<QueryResult> {
    if select.items.len() == 1 && select.items[0] == SelectItem::CountStar {
        coverage::hit("sdb.exec.count_star");
        return Ok(QueryResult {
            columns: vec!["count".into()],
            rows: vec![vec![Value::Int(rows.len() as i64)]],
            effect: None,
        });
    }
    coverage::hit("sdb.exec.projection");
    let mut out_rows = Vec::with_capacity(rows.len());
    for row in rows {
        let binding = RowBinding::single(table_ref, table, row);
        let mut out = Vec::with_capacity(select.items.len());
        for item in &select.items {
            match item {
                SelectItem::CountStar => out.push(Value::Int(rows.len() as i64)),
                SelectItem::Expr(expr) => {
                    out.push(evaluate_expr(expr, Some(&binding), database, ctx)?)
                }
            }
        }
        out_rows.push(out);
    }
    Ok(QueryResult {
        columns: (0..select.items.len()).map(|i| format!("col{i}")).collect(),
        rows: out_rows,
        effect: None,
    })
}

#[allow(clippy::too_many_arguments)]
fn build_join_result(
    select: &SelectStatement,
    left_ref: &TableRef,
    right_ref: &TableRef,
    left_table: &Table,
    right_table: &Table,
    matching: &[(usize, usize)],
    database: &Database,
    ctx: &FunctionContext,
) -> SdbResult<QueryResult> {
    if select.items.len() == 1 && select.items[0] == SelectItem::CountStar {
        coverage::hit("sdb.exec.count_star");
        return Ok(QueryResult {
            columns: vec!["count".into()],
            rows: vec![vec![Value::Int(matching.len() as i64)]],
            effect: None,
        });
    }
    coverage::hit("sdb.exec.projection");
    let mut out_rows = Vec::with_capacity(matching.len());
    for &(li, ri) in matching {
        let binding = RowBinding::pair(
            left_ref,
            left_table,
            &left_table.rows[li],
            right_ref,
            right_table,
            &right_table.rows[ri],
        );
        let mut out = Vec::with_capacity(select.items.len());
        for item in &select.items {
            match item {
                SelectItem::CountStar => out.push(Value::Int(matching.len() as i64)),
                SelectItem::Expr(expr) => {
                    out.push(evaluate_expr(expr, Some(&binding), database, ctx)?)
                }
            }
        }
        out_rows.push(out);
    }
    Ok(QueryResult {
        columns: (0..select.items.len()).map(|i| format!("col{i}")).collect(),
        rows: out_rows,
        effect: None,
    })
}

fn build_rtree(table: &Table, column: &str) -> RTree<usize> {
    let Some(col_idx) = table.column_index(column) else {
        return RTree::new();
    };
    let mut tree = RTree::new();
    for (row_idx, row) in table.live_rows() {
        let envelope = row
            .get(col_idx)
            .map(Database::value_envelope)
            .unwrap_or_else(Envelope::empty);
        tree.insert(envelope, row_idx);
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(engine: &mut Engine, sql: &str) -> i64 {
        engine.execute(sql).unwrap().count().unwrap()
    }

    #[test]
    fn listing1_join_count_with_and_without_fault() {
        let setup = "CREATE TABLE t1 (g geometry);
            CREATE TABLE t2 (g geometry);
            INSERT INTO t1 (g) VALUES ('LINESTRING(0 1,2 0)');
            INSERT INTO t2 (g) VALUES ('POINT(0.2 0.9)');";
        let query = "SELECT COUNT(*) FROM t1 JOIN t2 ON ST_Covers(t1.g,t2.g);";

        let mut faulty = Engine::new(EngineProfile::PostgisLike);
        faulty.execute_script(setup).unwrap();
        assert_eq!(
            count(&mut faulty, query),
            0,
            "the stock engine exhibits the Listing 1 bug"
        );

        let mut fixed = Engine::reference(EngineProfile::PostgisLike);
        fixed.execute_script(setup).unwrap();
        assert_eq!(
            count(&mut fixed, query),
            1,
            "the patched engine returns the correct count"
        );
    }

    #[test]
    fn listing2_affine_pair_is_correct_even_on_the_faulty_engine() {
        let setup = "CREATE TABLE t1 (g geometry);
            CREATE TABLE t2 (g geometry);
            INSERT INTO t1 (g) VALUES ('LINESTRING(1 1,0 0)');
            INSERT INTO t2 (g) VALUES ('POINT(0.9 0.9)');";
        let query = "SELECT COUNT(*) FROM t1 JOIN t2 ON ST_Covers(t1.g,t2.g);";
        let mut faulty = Engine::new(EngineProfile::PostgisLike);
        faulty.execute_script(setup).unwrap();
        assert_eq!(count(&mut faulty, query), 1);
    }

    #[test]
    fn listing7_prepared_join_misses_a_pair() {
        let setup = "CREATE TABLE t (id int, geom geometry);
            INSERT INTO t (id, geom) VALUES
            (1,'GEOMETRYCOLLECTION(MULTIPOINT((0 0),(3 1)))'::geometry),
            (2,'GEOMETRYCOLLECTION(MULTIPOINT((0 0),(3 1)))'::geometry),
            (3,'MULTIPOLYGON(((0 0,5 0,0 5,0 0)))'::geometry);";
        let query =
            "SELECT a1.id, a2.id FROM t As a1, t As a2 WHERE ST_Contains(a1.geom, a2.geom);";

        let mut fixed = Engine::reference(EngineProfile::PostgisLike);
        fixed.execute_script(setup).unwrap();
        let correct = fixed.execute(query).unwrap();
        let correct_pairs: Vec<(i64, i64)> = correct
            .rows
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(
            correct_pairs,
            vec![(1, 1), (1, 2), (2, 1), (2, 2), (3, 1), (3, 2), (3, 3)]
        );

        let mut faulty = Engine::with_faults(
            EngineProfile::PostgisLike,
            FaultSet::with([FaultId::GeosPreparedDuplicateDropped]),
        );
        faulty.execute_script(setup).unwrap();
        let buggy = faulty.execute(query).unwrap();
        let buggy_pairs: Vec<(i64, i64)> = buggy
            .rows
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(
            buggy_pairs,
            vec![(1, 1), (1, 2), (2, 1), (2, 2), (3, 1), (3, 3)],
            "the (3,2) pair is dropped by the prepared-geometry fault"
        );
    }

    #[test]
    fn listing8_index_scan_drops_empty_geometry() {
        let setup = "CREATE TABLE t (id int, geom geometry);
            INSERT INTO t (id, geom) VALUES (1, 'POINT EMPTY');
            CREATE INDEX idx ON t USING GIST (geom);
            SET enable_seqscan = false;";
        let query = "SELECT COUNT(*) FROM t WHERE geom ~= 'POINT EMPTY'::geometry;";

        let mut faulty = Engine::with_faults(
            EngineProfile::PostgisLike,
            FaultSet::with([FaultId::PostgisGistIndexDropsRows]),
        );
        faulty.execute_script(setup).unwrap();
        assert_eq!(
            count(&mut faulty, query),
            0,
            "the faulty index scan misses the row"
        );

        let mut fixed = Engine::reference(EngineProfile::PostgisLike);
        fixed.execute_script(setup).unwrap();
        assert_eq!(count(&mut fixed, query), 1);

        // With sequential scans the faulty engine is also correct: this is
        // exactly what the Index oracle compares.
        let mut faulty_seq = Engine::with_faults(
            EngineProfile::PostgisLike,
            FaultSet::with([FaultId::PostgisGistIndexDropsRows]),
        );
        faulty_seq
            .execute_script(
                "CREATE TABLE t (id int, geom geometry);
             INSERT INTO t (id, geom) VALUES (1, 'POINT EMPTY');
             CREATE INDEX idx ON t USING GIST (geom);",
            )
            .unwrap();
        assert_eq!(count(&mut faulty_seq, query), 1);
    }

    #[test]
    fn listings3_and_4_run_through_session_variables() {
        let mut mysql = Engine::new(EngineProfile::MysqlLike);
        mysql
            .execute("SET @g1='MULTILINESTRING((990 280,100 20))';")
            .unwrap();
        mysql.execute("SET @g2='GEOMETRYCOLLECTION(MULTILINESTRING((990 280, 100 20)),POLYGON((360 60,850 620,850 420,360 60)))';").unwrap();
        let result = mysql
            .execute("SELECT ST_Crosses(ST_GeomFromText(@g1), ST_GeomFromText(@g2));")
            .unwrap();
        assert_eq!(
            result.single_value(),
            Some(&Value::Bool(true)),
            "the stock MySQL-like engine shows the Listing 3 bug"
        );

        let mut fixed = Engine::reference(EngineProfile::MysqlLike);
        fixed
            .execute("SET @g1='MULTILINESTRING((990 280,100 20))';")
            .unwrap();
        fixed.execute("SET @g2='GEOMETRYCOLLECTION(MULTILINESTRING((990 280, 100 20)),POLYGON((360 60,850 620,850 420,360 60)))';").unwrap();
        let result = fixed
            .execute("SELECT ST_Crosses(ST_GeomFromText(@g1), ST_GeomFromText(@g2));")
            .unwrap();
        assert_eq!(result.single_value(), Some(&Value::Bool(false)));
    }

    #[test]
    fn join_count_matches_between_seqscan_index_and_prepared_on_reference_engine() {
        let setup = "CREATE TABLE a (g geometry);
            CREATE TABLE b (g geometry);
            INSERT INTO a (g) VALUES ('POLYGON((0 0,4 0,4 4,0 4,0 0))'), ('POINT(10 10)'), ('LINESTRING(-3 -3,-1 -1)');
            INSERT INTO b (g) VALUES ('POINT(2 2)'), ('POINT(-2 -2)'), ('POLYGON((3 3,6 3,6 6,3 6,3 3))'), ('POINT EMPTY');
            CREATE INDEX idx_b ON b USING GIST (g);";
        let query = "SELECT COUNT(*) FROM a JOIN b ON ST_Intersects(a.g, b.g);";

        let mut reference = Engine::reference(EngineProfile::PostgisLike);
        reference.execute_script(setup).unwrap();
        let with_prepared = count(&mut reference, query);

        reference.execute("SET enable_prepared = false;").unwrap();
        let nested_loop = count(&mut reference, query);

        reference.execute("SET enable_seqscan = false;").unwrap();
        let with_index = count(&mut reference, query);

        assert_eq!(with_prepared, nested_loop);
        assert_eq!(nested_loop, with_index);
        // Three intersecting pairs: polygon/point(2 2), polygon/polygon, and
        // the line through (-2 -2) with that point.
        assert_eq!(nested_loop, 3);
    }

    #[test]
    fn unknown_settings_and_variables_error() {
        let mut engine = Engine::reference(EngineProfile::PostgisLike);
        assert!(engine.execute("SET bogus_setting = true;").is_err());
        assert!(engine.execute("SELECT ST_AsText(@missing);").is_err());
    }

    #[test]
    fn insert_validates_column_counts_and_types() {
        let mut engine = Engine::reference(EngineProfile::PostgisLike);
        engine
            .execute("CREATE TABLE t (id int, g geometry);")
            .unwrap();
        assert!(engine.execute("INSERT INTO t (id, g) VALUES (1);").is_err());
        assert!(engine
            .execute("INSERT INTO t (id, missing) VALUES (1, 'POINT(0 0)');")
            .is_err());
        engine
            .execute("INSERT INTO t (id, g) VALUES (1, 'POINT(0 0)');")
            .unwrap();
        assert_eq!(engine.database().table("t").unwrap().row_count(), 1);
    }

    #[test]
    fn execution_stats_accumulate() {
        let mut engine = Engine::reference(EngineProfile::DuckdbSpatialLike);
        engine.execute("CREATE TABLE t (g geometry);").unwrap();
        engine
            .execute("INSERT INTO t (g) VALUES ('POINT(1 1)');")
            .unwrap();
        let (time, statements) = engine.execution_stats();
        assert_eq!(statements, 2);
        assert!(time >= Duration::ZERO);
        engine.reset_stats();
        assert_eq!(engine.execution_stats().1, 0);
    }

    #[test]
    fn crash_fault_at_create_index_time() {
        let mut faulty = Engine::with_faults(
            EngineProfile::PostgisLike,
            FaultSet::with([FaultId::PostgisCrashIndexAllEmpty]),
        );
        faulty
            .execute_script(
                "CREATE TABLE t (g geometry); INSERT INTO t (g) VALUES ('POINT EMPTY');",
            )
            .unwrap();
        let err = faulty
            .execute("CREATE INDEX idx ON t USING GIST (g);")
            .unwrap_err();
        assert!(err.is_crash());
    }

    fn knn_setup(engine: &mut Engine) {
        engine
            .execute_script(
                "CREATE TABLE t (id int, g geometry);
                 INSERT INTO t (id, g) VALUES
                 (1, 'POINT(10 0)'),
                 (2, 'POINT(1 1)'),
                 (3, 'POINT(-3 0)'),
                 (4, 'POINT EMPTY'),
                 (5, 'POINT(0 2)');",
            )
            .unwrap();
    }

    fn knn_ids(engine: &mut Engine, k: usize) -> Vec<i64> {
        let sql = format!(
            "SELECT a.id FROM t a ORDER BY ST_Distance(a.g, 'POINT(0 0)'::geometry) LIMIT {k}"
        );
        engine
            .execute(&sql)
            .unwrap()
            .rows
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect()
    }

    #[test]
    fn order_by_limit_sorts_ascending_with_nulls_last() {
        for profile in EngineProfile::ALL {
            let mut engine = Engine::reference(profile);
            knn_setup(&mut engine);
            assert_eq!(knn_ids(&mut engine, 3), vec![2, 5, 3], "{}", profile.name());
            // The EMPTY geometry (NULL distance) sorts after every defined
            // key, in row order.
            assert_eq!(
                knn_ids(&mut engine, 5),
                vec![2, 5, 3, 1, 4],
                "{}",
                profile.name()
            );
        }
    }

    #[test]
    fn order_by_desc_reverses_defined_keys() {
        let mut engine = Engine::reference(EngineProfile::PostgisLike);
        knn_setup(&mut engine);
        let result = engine
            .execute(
                "SELECT a.id FROM t a ORDER BY ST_Distance(a.g, 'POINT(0 0)'::geometry) DESC LIMIT 2",
            )
            .unwrap();
        let ids: Vec<i64> = result.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn limit_without_order_truncates_in_row_order() {
        let mut engine = Engine::reference(EngineProfile::MysqlLike);
        knn_setup(&mut engine);
        let result = engine.execute("SELECT a.id FROM t a LIMIT 2").unwrap();
        let ids: Vec<i64> = result.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![1, 2]);
        // LIMIT does not cap an aggregate's input set...
        let count = engine
            .execute("SELECT COUNT(*) FROM t LIMIT 1")
            .unwrap()
            .count()
            .unwrap();
        assert_eq!(count, 5);
        // ...but it does cap the aggregate's *result* rows (PostgreSQL
        // returns zero rows for `SELECT COUNT(*) ... LIMIT 0`).
        let result = engine.execute("SELECT COUNT(*) FROM t LIMIT 0").unwrap();
        assert_eq!(result.row_count(), 0);
    }

    #[test]
    fn knn_index_scan_matches_sequential_order_by() {
        let mut seq = Engine::reference(EngineProfile::PostgisLike);
        knn_setup(&mut seq);

        let mut indexed = Engine::reference(EngineProfile::PostgisLike);
        knn_setup(&mut indexed);
        indexed
            .execute("CREATE INDEX idx ON t USING GIST (g);")
            .unwrap();
        indexed.execute("SET enable_seqscan = false;").unwrap();

        for k in 1..=5 {
            assert_eq!(knn_ids(&mut seq, k), knn_ids(&mut indexed, k), "k = {k}");
        }
    }

    #[test]
    fn knn_index_scan_breaks_distance_ties_like_the_stable_sort() {
        let setup = "CREATE TABLE t (id int, g geometry);
            INSERT INTO t (id, g) VALUES
            (1, 'POINT(0 5)'), (2, 'POINT(5 0)'), (3, 'POINT(-5 0)'), (4, 'POINT(1 0)');";
        let mut seq = Engine::reference(EngineProfile::PostgisLike);
        seq.execute_script(setup).unwrap();
        let mut indexed = Engine::reference(EngineProfile::PostgisLike);
        indexed.execute_script(setup).unwrap();
        indexed
            .execute("CREATE INDEX idx ON t USING GIST (g);")
            .unwrap();
        indexed.execute("SET enable_seqscan = false;").unwrap();
        // Three rows tie at distance 5; the limit cuts inside the tie and
        // both paths must pick the same (earliest-row) subset.
        for k in 1..=4 {
            assert_eq!(knn_ids(&mut seq, k), knn_ids(&mut indexed, k), "k = {k}");
        }
    }

    #[test]
    fn knn_index_scan_exhibits_the_gist_fault() {
        let mut faulty = Engine::with_faults(
            EngineProfile::PostgisLike,
            FaultSet::with([FaultId::PostgisGistIndexDropsRows]),
        );
        knn_setup(&mut faulty);
        faulty
            .execute("CREATE INDEX idx ON t USING GIST (g);")
            .unwrap();
        faulty.execute("SET enable_seqscan = false;").unwrap();
        // The negative-quadrant row (id 3) is dropped by the faulty scan.
        assert_eq!(knn_ids(&mut faulty, 3), vec![2, 5, 1]);
    }

    #[test]
    fn order_by_rejects_non_numeric_keys() {
        let mut engine = Engine::reference(EngineProfile::PostgisLike);
        knn_setup(&mut engine);
        assert!(engine
            .execute("SELECT a.id FROM t a ORDER BY ST_AsText(a.g) LIMIT 2")
            .is_err());
    }

    #[test]
    fn order_by_limit_applies_to_joins() {
        let mut engine = Engine::reference(EngineProfile::PostgisLike);
        engine
            .execute_script(
                "CREATE TABLE a (id int, g geometry);
                 CREATE TABLE b (id int, g geometry);
                 INSERT INTO a (id, g) VALUES (1, 'POINT(0 0)'), (2, 'POINT(10 0)');
                 INSERT INTO b (id, g) VALUES (1, 'POINT(0 1)'), (2, 'POINT(10 2)');",
            )
            .unwrap();
        let result = engine
            .execute(
                "SELECT a.id, b.id FROM a JOIN b ON ST_DWithin(a.g, b.g, 100) \
                 ORDER BY ST_Distance(a.g, b.g) LIMIT 2",
            )
            .unwrap();
        let pairs: Vec<(i64, i64)> = result
            .rows
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(pairs, vec![(1, 1), (2, 2)]);
    }

    /// Serializes the unit tests that flip the process-global
    /// [`plan`] switches, so they cannot race each other or the tests that
    /// assert which plan a distance join takes.
    static PLAN_TOGGLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    use plan::with_distance_join_disabled as with_distance_plan_disabled;

    #[test]
    fn range_join_counts_are_plan_independent() {
        let _guard = PLAN_TOGGLE_LOCK.lock().unwrap();
        let queries = [
            (
                "SELECT COUNT(*) FROM a JOIN b ON ST_DWithin(a.g, b.g, 5)",
                1,
            ),
            // The negated form has no join-plan shape and stays on the
            // nested loop.
            (
                "SELECT COUNT(*) FROM a JOIN b ON NOT ST_DWithin(a.g, b.g, 5)",
                1,
            ),
            (
                "SELECT COUNT(*) FROM a JOIN b ON ST_DFullyWithin(a.g, b.g, 200)",
                2,
            ),
        ];
        let mut engine = Engine::reference(EngineProfile::PostgisLike);
        engine
            .execute_script(
                "CREATE TABLE a (g geometry);
                 CREATE TABLE b (g geometry);
                 INSERT INTO a (g) VALUES ('POINT(0 0)'), ('POINT(100 100)');
                 INSERT INTO b (g) VALUES ('POINT(3 4)');",
            )
            .unwrap();
        for (sql, expected) in queries {
            assert_eq!(count(&mut engine, sql), expected, "prepared plan: {sql}");
        }
        with_distance_plan_disabled(|| {
            for (sql, expected) in queries {
                assert_eq!(count(&mut engine, sql), expected, "nested loop: {sql}");
            }
        });
    }

    #[test]
    fn distance_joins_take_the_dedicated_plans() {
        let _guard = PLAN_TOGGLE_LOCK.lock().unwrap();
        let setup = "CREATE TABLE a (g geometry);
            CREATE TABLE b (g geometry);
            INSERT INTO a (g) VALUES ('POINT(0 0)');
            INSERT INTO b (g) VALUES ('POINT(1 1)'), ('POINT(50 50)');";
        let query = "SELECT COUNT(*) FROM a JOIN b ON ST_DWithin(a.g, b.g, 5)";

        let probes_for = |engine: &mut Engine| -> Vec<&'static str> {
            spatter_topo::coverage::local::start();
            assert_eq!(count(engine, query), 1);
            spatter_topo::coverage::local::take()
                .into_iter()
                .map(|(name, _)| name)
                .collect()
        };

        let mut engine = Engine::reference(EngineProfile::PostgisLike);
        engine.execute_script(setup).unwrap();
        let prepared = probes_for(&mut engine);
        assert!(prepared.contains(&"sdb.exec.join_distance_prepared"));
        assert!(!prepared.contains(&"sdb.exec.join_nested_loop"));

        engine
            .execute_script(
                "CREATE INDEX idx_b ON b USING GIST (g);
                 SET enable_seqscan = false;",
            )
            .unwrap();
        let indexed = probes_for(&mut engine);
        assert!(indexed.contains(&"sdb.exec.join_distance_index"));
        assert!(!indexed.contains(&"sdb.exec.join_distance_prepared"));

        // With the plan disabled the join falls back to the general loop.
        engine.execute("SET enable_seqscan = true;").unwrap();
        with_distance_plan_disabled(|| {
            let nested = probes_for(&mut engine);
            assert!(nested.contains(&"sdb.exec.join_nested_loop"));
            assert!(!nested.contains(&"sdb.exec.join_distance_prepared"));
        });
    }

    #[test]
    fn distance_index_join_matches_the_sequential_plans() {
        let setup = "CREATE TABLE a (g geometry);
            CREATE TABLE b (g geometry);
            INSERT INTO a (g) VALUES ('POINT(0 0)'), ('LINESTRING(4 0,8 0)'),
                ('POLYGON((10 10,14 10,14 14,10 14,10 10))'), ('POINT EMPTY');
            INSERT INTO b (g) VALUES ('POINT(2 2)'), ('POINT(9 1)'),
                ('POLYGON((13 13,16 13,16 16,13 16,13 13))'), ('POINT EMPTY'),
                ('MULTIPOINT((5 5),EMPTY)');
            CREATE INDEX idx_b ON b USING GIST (g);";
        for function in ["ST_DWithin", "ST_DFullyWithin"] {
            for d in ["0", "1", "2.83", "10", "1e300"] {
                let query = format!(
                    "SELECT ST_AsText(a.g), ST_AsText(b.g) FROM a JOIN b \
                     ON {function}(a.g, b.g, {d}) \
                     ORDER BY ST_Distance(a.g, b.g) LIMIT 6"
                );
                let mut prepared = Engine::reference(EngineProfile::PostgisLike);
                prepared.execute_script(setup).unwrap();
                let mut indexed = Engine::reference(EngineProfile::PostgisLike);
                indexed.execute_script(setup).unwrap();
                indexed.execute("SET enable_seqscan = false;").unwrap();
                assert_eq!(
                    prepared.execute(&query).unwrap(),
                    indexed.execute(&query).unwrap(),
                    "{function} d={d}"
                );
            }
        }
    }

    #[test]
    fn distance_index_join_exhibits_the_gist_fault() {
        // The faulty index loses the negative-quadrant inner row, exactly as
        // the predicate index join does; the sequential plans keep it.
        let setup = "CREATE TABLE a (g geometry);
            CREATE TABLE b (g geometry);
            INSERT INTO a (g) VALUES ('POINT(0 0)');
            INSERT INTO b (g) VALUES ('POINT(-1 0)'), ('POINT(1 0)');
            CREATE INDEX idx_b ON b USING GIST (g);";
        let query = "SELECT COUNT(*) FROM a JOIN b ON ST_DWithin(a.g, b.g, 5)";

        let mut faulty = Engine::with_faults(
            EngineProfile::PostgisLike,
            FaultSet::with([FaultId::PostgisGistIndexDropsRows]),
        );
        faulty.execute_script(setup).unwrap();
        assert_eq!(count(&mut faulty, query), 2, "seqscan plans are unaffected");
        faulty.execute("SET enable_seqscan = false;").unwrap();
        assert_eq!(count(&mut faulty, query), 1, "the faulty index drops a row");

        let mut fixed = Engine::reference(EngineProfile::PostgisLike);
        fixed.execute_script(setup).unwrap();
        fixed.execute("SET enable_seqscan = false;").unwrap();
        assert_eq!(count(&mut fixed, query), 2);
    }

    #[test]
    fn commuted_symmetric_predicate_joins_leave_the_nested_loop() {
        // `Pred(b.g, a.g)` used to miss the predicate-join shape and silently
        // take the nested loop; it now plans exactly like `Pred(a.g, b.g)`.
        let setup = "CREATE TABLE a (g geometry);
            CREATE TABLE b (g geometry);
            INSERT INTO a (g) VALUES ('POLYGON((0 0,4 0,4 4,0 4,0 0))'),
                ('LINESTRING(0 0,2 2)'), ('POINT(10 10)');
            INSERT INTO b (g) VALUES ('POLYGON((2 2,6 2,6 6,2 6,2 2))'),
                ('LINESTRING(4 0,0 4)'), ('POINT(10 10)'), ('POINT(20 20)');";
        for predicate in [
            "ST_Intersects",
            "ST_Disjoint",
            "ST_Crosses",
            "ST_Overlaps",
            "ST_Touches",
            "ST_Equals",
        ] {
            let forward = format!("SELECT COUNT(*) FROM a JOIN b ON {predicate}(a.g, b.g)");
            let commuted = format!("SELECT COUNT(*) FROM a JOIN b ON {predicate}(b.g, a.g)");
            let mut engine = Engine::reference(EngineProfile::PostgisLike);
            engine.execute_script(setup).unwrap();
            let expected = count(&mut engine, &forward);
            spatter_topo::coverage::local::start();
            let got = count(&mut engine, &commuted);
            let probes: Vec<&'static str> = spatter_topo::coverage::local::take()
                .into_iter()
                .map(|(name, _)| name)
                .collect();
            assert_eq!(got, expected, "{predicate} is symmetric");
            assert!(
                probes.contains(&"sdb.exec.join_prepared"),
                "{predicate}: the commuted form takes the prepared plan"
            );
            assert!(
                !probes.contains(&"sdb.exec.join_nested_loop"),
                "{predicate}: the commuted form must not fall to the nested loop"
            );
        }
    }

    #[test]
    fn commuted_distance_joins_preserve_sql_argument_order_for_faults() {
        let _guard = PLAN_TOGGLE_LOCK.lock().unwrap();
        // The DFullyWithin fault triggers on the *first* argument as written
        // in the SQL: with `ST_DFullyWithin(b.g, a.g, d)` the small-coordinate
        // check must apply to b.g even though b is the inner join table.
        let setup = "CREATE TABLE a (g geometry);
            CREATE TABLE b (g geometry);
            INSERT INTO a (g) VALUES ('POINT(50 50)');
            INSERT INTO b (g) VALUES ('POINT(51 51)');";
        let forward = "SELECT COUNT(*) FROM a JOIN b ON ST_DFullyWithin(a.g, b.g, 100)";
        let commuted = "SELECT COUNT(*) FROM a JOIN b ON ST_DFullyWithin(b.g, a.g, 100)";

        let mut faulty = Engine::with_faults(
            EngineProfile::PostgisLike,
            FaultSet::with([FaultId::PostgisDFullyWithinSmallCoords]),
        );
        faulty
            .execute_script(
                "CREATE TABLE a (g geometry);
                 CREATE TABLE b (g geometry);
                 INSERT INTO a (g) VALUES ('POINT(50 50)');
                 INSERT INTO b (g) VALUES ('POINT(1 1)');",
            )
            .unwrap();
        // b.g has small coordinates: the commuted form hits the fault (false
        // for every pair), the forward form does not (a.g is large).
        assert_eq!(count(&mut faulty, forward), 1);
        assert_eq!(count(&mut faulty, commuted), 0);
        // The nested loop agrees on both orders, so the plan is faithful.
        with_distance_plan_disabled(|| {
            assert_eq!(count(&mut faulty, forward), 1);
            assert_eq!(count(&mut faulty, commuted), 0);
        });

        // Without the fault the predicate is symmetric and both orders plan
        // identically.
        let mut fixed = Engine::reference(EngineProfile::PostgisLike);
        fixed.execute_script(setup).unwrap();
        assert_eq!(count(&mut fixed, forward), 1);
        assert_eq!(count(&mut fixed, commuted), 1);
    }

    #[test]
    fn nan_comparison_semantics_in_where_clauses() {
        // Regression (filter path): a NaN-producing expression used to be a
        // hard "cannot compare NaN" execution error in a WHERE clause while
        // the same value was silently ordered by ORDER BY. The unified
        // semantics follow PostgreSQL float8: NaN = NaN, NaN > everything.
        let mut engine = Engine::reference(EngineProfile::PostgisLike);
        engine
            .execute_script(
                "CREATE TABLE t (id int, x double);
                 INSERT INTO t (id, x) VALUES (1, 3.0), (2, 'NaN'::double), (3, 1.0);",
            )
            .unwrap();
        // NaN is greater than every non-NaN value...
        assert_eq!(count(&mut engine, "SELECT COUNT(*) FROM t WHERE x > 2"), 2);
        // ...equal to itself...
        assert_eq!(
            count(
                &mut engine,
                "SELECT COUNT(*) FROM t WHERE x = 'NaN'::double"
            ),
            1
        );
        // ...and never less than anything.
        assert_eq!(
            count(
                &mut engine,
                "SELECT COUNT(*) FROM t WHERE x < 'Infinity'::double"
            ),
            2
        );
        // Scalar comparisons agree with the filter path.
        let result = engine
            .execute("SELECT 'NaN'::double = 'NaN'::double;")
            .unwrap();
        assert_eq!(result.single_value(), Some(&Value::Bool(true)));
    }

    #[test]
    fn nan_order_keys_sort_after_defined_before_null() {
        // Regression (sort path): NaN keys order after every defined key but
        // before SQL NULL, in both ascending and descending runs, exactly as
        // `compare_doubles` documents.
        let mut engine = Engine::reference(EngineProfile::PostgisLike);
        engine
            .execute_script(
                "CREATE TABLE t (id int, x double);
                 INSERT INTO t (id, x) VALUES
                 (1, 3.0), (2, 'NaN'::double), (3, 1.0), (4, NULL);",
            )
            .unwrap();
        let ids = |engine: &mut Engine, sql: &str| -> Vec<i64> {
            engine
                .execute(sql)
                .unwrap()
                .rows
                .iter()
                .map(|r| r[0].as_int().unwrap())
                .collect()
        };
        assert_eq!(
            ids(&mut engine, "SELECT a.id FROM t a ORDER BY a.x LIMIT 4"),
            vec![3, 1, 2, 4]
        );
        // DESC reverses defined keys (NaN counts as the largest defined
        // key); NULLs stay last.
        assert_eq!(
            ids(
                &mut engine,
                "SELECT a.id FROM t a ORDER BY a.x DESC LIMIT 4"
            ),
            vec![2, 1, 3, 4]
        );
        // A LIMIT that cuts right at the NaN key is deterministic.
        assert_eq!(
            ids(&mut engine, "SELECT a.id FROM t a ORDER BY a.x LIMIT 3"),
            vec![3, 1, 2]
        );
    }

    #[test]
    fn nan_tied_order_keys_fall_back_to_row_order_under_limit() {
        // All-NaN keys are mutual ties: the stable sort must fall back to
        // row order on every profile, and LIMIT must cut deterministically.
        for profile in EngineProfile::ALL {
            let mut engine = Engine::reference(profile);
            knn_setup(&mut engine);
            let result = engine
                .execute("SELECT a.id FROM t a ORDER BY 'NaN'::double LIMIT 3")
                .unwrap();
            let ids: Vec<i64> = result.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
            assert_eq!(ids, vec![1, 2, 3], "{}", profile.name());
        }
    }

    #[test]
    fn join_order_by_limit_ties_at_cutoff_use_pair_order() {
        // Tie-break audit: equal sort keys straddling the LIMIT cutoff in a
        // join pick the earliest join pairs (left row order, then right row
        // order), the same deterministic rule the single-table paths use.
        let setup = "CREATE TABLE a (id int, g geometry);
            CREATE TABLE b (id int, g geometry);
            INSERT INTO a (id, g) VALUES (1, 'POINT(0 0)'), (2, 'POINT(10 0)');
            INSERT INTO b (id, g) VALUES (1, 'POINT(0 5)'), (2, 'POINT(10 5)'), (3, 'POINT(0 -5)');";
        let mut engine = Engine::reference(EngineProfile::PostgisLike);
        engine.execute_script(setup).unwrap();
        // Every pair is within distance 100; three pairs tie at distance 5
        // and the rest are farther, so LIMIT 3 cuts exactly at the tie group
        // and must keep it in pair-enumeration order.
        let result = engine
            .execute(
                "SELECT a.id, b.id FROM a JOIN b ON ST_DWithin(a.g, b.g, 100) \
                 ORDER BY ST_Distance(a.g, b.g) LIMIT 3",
            )
            .unwrap();
        let pairs: Vec<(i64, i64)> = result
            .rows
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(pairs, vec![(1, 1), (1, 3), (2, 2)]);
    }

    #[test]
    fn knn_tie_at_cutoff_is_stable_across_seqscan_index_and_reruns() {
        // Tie-break audit: ties exactly at the k-th distance must resolve to
        // the same (earliest-row) subset on the seqscan sort and the index
        // NN scan, and identically on every re-run — the well-definedness
        // skip in the oracles relies on engines being deterministic even on
        // inputs the oracle refuses to compare.
        let setup = "CREATE TABLE t (id int, g geometry);
            INSERT INTO t (id, g) VALUES
            (1, 'POINT(3 4)'), (2, 'POINT(4 3)'), (3, 'POINT(-3 -4)'), (4, 'POINT(0 5)'),
            (5, 'POINT(1 0)');";
        let mut seq = Engine::reference(EngineProfile::PostgisLike);
        seq.execute_script(setup).unwrap();
        let mut indexed = Engine::reference(EngineProfile::PostgisLike);
        indexed.execute_script(setup).unwrap();
        indexed
            .execute("CREATE INDEX idx ON t USING GIST (g);")
            .unwrap();
        indexed.execute("SET enable_seqscan = false;").unwrap();
        // Four rows tie at distance 5; every k cuts somewhere around them.
        for k in 1..=5 {
            let first = knn_ids(&mut seq, k);
            assert_eq!(first, knn_ids(&mut indexed, k), "k = {k}");
            assert_eq!(first, knn_ids(&mut seq, k), "k = {k} re-run");
        }
        assert_eq!(knn_ids(&mut seq, 3), vec![5, 1, 2]);
    }

    #[test]
    fn scalar_select_without_tables() {
        let mut engine = Engine::reference(EngineProfile::PostgisLike);
        let result = engine
            .execute(
                "SELECT ST_Distance('MULTIPOINT((1 0),(0 0))'::geometry, 'POINT(-2 0)'::geometry);",
            )
            .unwrap();
        assert_eq!(result.single_value(), Some(&Value::Double(2.0)));
    }

    const MUTATION_SETUP: &str = "CREATE TABLE t (id int, g geometry);
        INSERT INTO t (id, g) VALUES
        (1, 'POINT(1 1)'), (2, 'POINT(2 2)'), (3, 'POINT(3 3)');
        CREATE INDEX idx ON t USING GIST (g);
        SET enable_seqscan = false;";

    #[test]
    fn update_moves_rows_and_maintains_the_index() {
        let mut engine = Engine::reference(EngineProfile::PostgisLike);
        engine.execute_script(MUTATION_SETUP).unwrap();
        let result = engine
            .execute("UPDATE t SET g = 'POINT(9 9)'::geometry WHERE id = 2;")
            .unwrap();
        assert_eq!(
            result.effect,
            Some(ExecutionResult::Update { rows_updated: 1 })
        );
        // The index answers from the *new* location and forgets the old one.
        assert_eq!(
            count(
                &mut engine,
                "SELECT COUNT(*) FROM t WHERE g ~= 'POINT(9 9)'::geometry;"
            ),
            1
        );
        assert_eq!(
            count(
                &mut engine,
                "SELECT COUNT(*) FROM t WHERE g ~= 'POINT(2 2)'::geometry;"
            ),
            0
        );
        // WHERE by geometry value also targets rows.
        let by_geom = engine
            .execute("UPDATE t SET id = 7 WHERE g = 'POINT(9 9)'::geometry;")
            .unwrap();
        assert_eq!(
            by_geom.effect,
            Some(ExecutionResult::Update { rows_updated: 1 })
        );
    }

    #[test]
    fn delete_tombstones_rows_and_keeps_slot_ids_stable() {
        let mut engine = Engine::reference(EngineProfile::PostgisLike);
        engine.execute_script(MUTATION_SETUP).unwrap();
        let result = engine.execute("DELETE FROM t WHERE id = 1;").unwrap();
        assert_eq!(
            result.effect,
            Some(ExecutionResult::Delete { rows_deleted: 1 })
        );
        assert_eq!(count(&mut engine, "SELECT COUNT(*) FROM t;"), 2);
        // Surviving rows keep answering through the index: their slot ids
        // did not shift when slot 0 was tombstoned.
        assert_eq!(
            count(
                &mut engine,
                "SELECT COUNT(*) FROM t WHERE g ~= 'POINT(3 3)'::geometry;"
            ),
            1
        );
        // Deleting an already-deleted row matches nothing.
        let again = engine.execute("DELETE FROM t WHERE id = 1;").unwrap();
        assert_eq!(
            again.effect,
            Some(ExecutionResult::Delete { rows_deleted: 0 })
        );
        // Unfiltered DELETE empties the table.
        let rest = engine.execute("DELETE FROM t;").unwrap();
        assert_eq!(
            rest.effect,
            Some(ExecutionResult::Delete { rows_deleted: 2 })
        );
        assert_eq!(count(&mut engine, "SELECT COUNT(*) FROM t;"), 0);
    }

    #[test]
    fn insert_after_delete_reuses_no_slots_and_stays_indexed() {
        let mut engine = Engine::reference(EngineProfile::PostgisLike);
        engine.execute_script(MUTATION_SETUP).unwrap();
        engine.execute("DELETE FROM t WHERE id = 2;").unwrap();
        engine
            .execute("INSERT INTO t (id, g) VALUES (4, 'POINT(4 4)');")
            .unwrap();
        assert_eq!(count(&mut engine, "SELECT COUNT(*) FROM t;"), 3);
        assert_eq!(
            count(
                &mut engine,
                "SELECT COUNT(*) FROM t WHERE g ~= 'POINT(4 4)'::geometry;"
            ),
            1
        );
    }

    #[test]
    fn drop_index_falls_back_to_sequential_scans() {
        let mut engine = Engine::reference(EngineProfile::PostgisLike);
        engine.execute_script(MUTATION_SETUP).unwrap();
        let result = engine.execute("DROP INDEX idx;").unwrap();
        assert_eq!(result.effect, Some(ExecutionResult::DropIndex));
        // Even with seqscans "disabled", the planner has no index left and
        // must fall back — and still answers correctly.
        assert_eq!(
            count(
                &mut engine,
                "SELECT COUNT(*) FROM t WHERE g ~= 'POINT(2 2)'::geometry;"
            ),
            1
        );
        assert!(engine.execute("DROP INDEX idx;").is_err());
    }

    #[test]
    fn stale_index_fault_only_fires_through_update_maintenance() {
        let fault = FaultSet::with([FaultId::PostgisGistStaleOnMutation]);
        let query = "SELECT COUNT(*) FROM t WHERE g ~= 'POINT(-5 1)'::geometry;";

        // Load-once: the same final state built purely by INSERT is correct,
        // so a load-once campaign can never observe this fault.
        let mut load_once = Engine::with_faults(EngineProfile::PostgisLike, fault.clone());
        load_once
            .execute_script(
                "CREATE TABLE t (id int, g geometry);
                 INSERT INTO t (id, g) VALUES (1, 'POINT(-5 1)'), (2, 'POINT(2 2)');
                 CREATE INDEX idx ON t USING GIST (g);
                 SET enable_seqscan = false;",
            )
            .unwrap();
        assert_eq!(count(&mut load_once, query), 1);

        // Mutation workload: UPDATE moves a row into the negative-x
        // half-plane; the faulty maintenance skips the reinsert and the
        // index keeps answering from the stale envelope.
        let mut churned = Engine::with_faults(EngineProfile::PostgisLike, fault.clone());
        churned.execute_script(MUTATION_SETUP).unwrap();
        churned
            .execute("UPDATE t SET g = 'POINT(-5 1)'::geometry WHERE id = 2;")
            .unwrap();
        assert_eq!(count(&mut churned, query), 0, "index answer is stale");
        churned.execute("SET enable_seqscan = true;").unwrap();
        churned.execute("DROP INDEX idx;").unwrap();
        assert_eq!(count(&mut churned, query), 1, "the table itself is right");

        // The reference engine performs the same churn correctly.
        let mut fixed = Engine::reference(EngineProfile::PostgisLike);
        fixed.execute_script(MUTATION_SETUP).unwrap();
        fixed
            .execute("UPDATE t SET g = 'POINT(-5 1)'::geometry WHERE id = 2;")
            .unwrap();
        assert_eq!(count(&mut fixed, query), 1);
    }

    #[test]
    fn update_into_positive_halfplane_is_correct_even_with_the_fault() {
        let mut engine = Engine::with_faults(
            EngineProfile::PostgisLike,
            FaultSet::with([FaultId::PostgisGistStaleOnMutation]),
        );
        engine.execute_script(MUTATION_SETUP).unwrap();
        engine
            .execute("UPDATE t SET g = 'POINT(8 8)'::geometry WHERE id = 1;")
            .unwrap();
        assert_eq!(
            count(
                &mut engine,
                "SELECT COUNT(*) FROM t WHERE g ~= 'POINT(8 8)'::geometry;"
            ),
            1
        );
    }
}
