//! The seeded fault registry.
//!
//! The paper's evaluation rests on 35 reported bugs (34 unique) found in real
//! SDBMSs over a four-month campaign (Tables 2 and 3). This reproduction
//! cannot re-discover those bugs in systems it does not ship, so it seeds
//! behaviour-accurate faults into the same components of its own engine: the
//! shared geometry library ("GEOS analog"), the engine-specific wrappers, the
//! prepared-geometry optimization, and the GiST-analog index. Each fault
//! records the metadata needed to regenerate the paper's tables: the affected
//! system, the component, logic vs crash, report status, the root-cause
//! trigger class of §5.2, and — for the 20 confirmed logic bugs — which of
//! the compared methodologies can detect it (the ground truth behind
//! Table 4, which the paper established by manual analysis).

use std::collections::BTreeSet;

/// The systems of the paper's evaluation (Table 2 rows). `Geos` is the shared
/// third-party library used by the PostGIS-like and DuckDB-like profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultySystem {
    /// The shared geometry library (GEOS analog).
    Geos,
    /// PostGIS-specific engine code.
    PostGis,
    /// DuckDB Spatial-specific engine code.
    DuckDbSpatial,
    /// MySQL GIS engine code.
    MySql,
    /// SQL Server engine code.
    SqlServer,
}

impl FaultySystem {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            FaultySystem::Geos => "GEOS",
            FaultySystem::PostGis => "PostGIS",
            FaultySystem::DuckDbSpatial => "DuckDB Spatial",
            FaultySystem::MySql => "MySQL",
            FaultySystem::SqlServer => "SQL Server",
        }
    }
}

/// Logic bug (silent wrong result) vs crash bug (§1, Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Produces an incorrect result silently.
    Logic,
    /// Terminates the query with a simulated crash.
    Crash,
}

/// Report status (Table 2 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultStatus {
    /// Confirmed and fixed by the developers.
    Fixed,
    /// Confirmed but not yet fixed.
    Confirmed,
    /// Reported, awaiting confirmation.
    Unconfirmed,
    /// Same root cause as a previously confirmed bug.
    Duplicate,
}

/// Root-cause / trigger-pattern classes of §5.2 ("Patterns of inducing
/// cases").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriggerClass {
    /// EMPTY geometries or EMPTY elements.
    Empty,
    /// MIXED (GEOMETRYCOLLECTION) geometries.
    Mixed,
    /// Floating-point precision loss.
    Precision,
    /// The prepared-geometry optimization.
    Prepared,
    /// The GiST-analog index path.
    Index,
    /// A wrong or ambiguous function definition.
    Definition,
    /// Anything else (representation handling, recursion, …).
    Other,
}

/// Which testing methodologies can detect a (logic) fault — the Table 4
/// ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Detectability {
    /// Affine Equivalent Inputs (the paper's approach).
    pub aei: bool,
    /// Differential testing PostGIS vs MySQL.
    pub diff_postgis_mysql: bool,
    /// Differential testing PostGIS vs DuckDB Spatial.
    pub diff_postgis_duckdb: bool,
    /// Differential testing with and without an index.
    pub index: bool,
    /// Ternary Logic Partitioning.
    pub tlp: bool,
}

/// Identifiers of every seeded fault. The prefix encodes the system:
/// `G*` = GEOS analog, `P*` = PostGIS-like, `M*` = MySQL-like,
/// `D*` = DuckDB-Spatial-like, `S*` = SQL-Server-like; `*C*` = crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum FaultId {
    // --- GEOS-analog logic faults (9) -----------------------------------
    GeosCoversPrecisionLoss,
    GeosMixedBoundaryLastOneWins,
    GeosPreparedDuplicateDropped,
    GeosEmptyDistanceRecursion,
    GeosMixedDimensionFirstElement,
    GeosIntersectsEmptyFirstElement,
    GeosTouchesDirectionSensitive,
    GeosEqualsDuplicateVertices,
    GeosDisjointEmptyElementMatrix,
    // --- GEOS-analog crash faults (3) ------------------------------------
    GeosCrashConvexHullEmptyCollection,
    GeosCrashPolygonizeDuplicatePoints,
    GeosCrashRelateShortRing,
    // --- PostGIS-like logic faults (7) ------------------------------------
    PostgisGistIndexDropsRows,
    PostgisDFullyWithinSmallCoords,
    PostgisEqualsSnapToGrid,
    PostgisContainsMultiPolygonFirstOnly,
    PostgisWithinEmptyCollectionMember,
    PostgisTouchesDuplicateVertices,
    PostgisCoveredByRingOrientation,
    // --- PostGIS-like crash faults (2) ------------------------------------
    PostgisCrashDumpRingsEmptyMulti,
    PostgisCrashIndexAllEmpty,
    // --- PostGIS-like other reports (unconfirmed / duplicate) -------------
    PostgisUnconfirmedEnvelopeEmpty,
    PostgisDuplicateCoversPrecision,
    // --- MySQL-like logic faults (4) ---------------------------------------
    MysqlCrossesLargeCoordinates,
    MysqlOverlapsAxisOrder,
    MysqlTouchesEmptyElement,
    MysqlDisjointNegativeCoordinates,
    // --- DuckDB-Spatial-like crash faults (5) ------------------------------
    DuckdbCrashCollectEmptyMixed,
    DuckdbCrashGeometryNZero,
    DuckdbCrashNestedEmptyCollection,
    DuckdbCrashBoundaryCollection,
    DuckdbCrashCollectionExtractMismatch,
    // --- DuckDB-Spatial-like other reports ---------------------------------
    DuckdbUnconfirmedEmptyPolygonWkt,
    // --- SQL-Server-like reports (unconfirmed) ------------------------------
    SqlServerUnconfirmedWithinCollection,
    SqlServerUnconfirmedCrashEmptyMultipoint,
    // --- Extension faults (beyond the paper's 35 reports) -------------------
    /// GiST maintenance skips the reinsert step of an `UPDATE` when the new
    /// geometry reaches into the negative-x half-plane, leaving the index
    /// keyed by the stale pre-update envelope. Only reachable by workloads
    /// that mutate after indexing — load-once campaigns never execute the
    /// update maintenance path, so they provably cannot hit it.
    PostgisGistStaleOnMutation,
}

impl FaultId {
    /// The stable textual name of the fault (the `Debug` rendering), used to
    /// serialize fault sets across process boundaries — e.g. on the
    /// `spatter-sdb-server` command line.
    pub fn name(&self) -> String {
        format!("{self:?}")
    }

    /// Parses a fault from its [`FaultId::name`] form.
    pub fn from_name(name: &str) -> Option<FaultId> {
        FaultCatalog::all()
            .into_iter()
            .chain(FaultCatalog::extensions())
            .map(|info| info.id)
            .find(|id| id.name() == name)
    }
}

/// Metadata describing one seeded fault / bug report.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInfo {
    /// The fault identifier.
    pub id: FaultId,
    /// Human-readable one-line description.
    pub description: &'static str,
    /// The system the bug report was filed against.
    pub system: FaultySystem,
    /// Logic or crash.
    pub kind: FaultKind,
    /// Report status.
    pub status: FaultStatus,
    /// Root-cause / trigger class.
    pub trigger: TriggerClass,
    /// Which methodologies can detect it (only meaningful for confirmed or
    /// fixed logic faults — the population Table 4 analyses).
    pub detectable_by: Detectability,
    /// The paper listing this fault reproduces, if any.
    pub listing: Option<u8>,
}

impl FaultInfo {
    /// Whether this report counts towards the 20 confirmed/fixed logic bugs
    /// of Tables 3 and 4.
    pub fn is_confirmed_logic(&self) -> bool {
        self.kind == FaultKind::Logic
            && matches!(self.status, FaultStatus::Fixed | FaultStatus::Confirmed)
    }
}

/// A set of enabled faults, as carried by an [`crate::Engine`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSet {
    enabled: BTreeSet<FaultId>,
}

impl FaultSet {
    /// No faults: the reference ("fixed") engine.
    pub fn none() -> Self {
        FaultSet::default()
    }

    /// A set with the given faults enabled.
    pub fn with(faults: impl IntoIterator<Item = FaultId>) -> Self {
        FaultSet {
            enabled: faults.into_iter().collect(),
        }
    }

    /// Enables a fault.
    pub fn enable(&mut self, fault: FaultId) {
        self.enabled.insert(fault);
    }

    /// Disables a fault ("applies the fix").
    pub fn disable(&mut self, fault: FaultId) {
        self.enabled.remove(&fault);
    }

    /// Whether the fault is enabled.
    pub fn is_active(&self, fault: FaultId) -> bool {
        self.enabled.contains(&fault)
    }

    /// Number of enabled faults.
    pub fn len(&self) -> usize {
        self.enabled.len()
    }

    /// Whether no fault is enabled.
    pub fn is_empty(&self) -> bool {
        self.enabled.is_empty()
    }

    /// Iterates over the enabled faults.
    pub fn iter(&self) -> impl Iterator<Item = FaultId> + '_ {
        self.enabled.iter().copied()
    }

    /// Serializes the set as a comma-separated list of fault names (the
    /// empty string for the empty set); the inverse of
    /// [`FaultSet::parse_names`]. Used to hand a fault set to an
    /// out-of-process engine on its command line.
    pub fn to_names(&self) -> String {
        self.iter()
            .map(|fault| fault.name())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parses a comma-separated list of fault names.
    pub fn parse_names(spec: &str) -> Result<FaultSet, String> {
        let mut set = FaultSet::none();
        for name in spec.split(',').map(str::trim).filter(|n| !n.is_empty()) {
            let fault = FaultId::from_name(name).ok_or_else(|| format!("unknown fault {name}"))?;
            set.enable(fault);
        }
        Ok(set)
    }
}

/// The full catalogue of seeded faults (the paper's 35 reports).
pub struct FaultCatalog;

impl FaultCatalog {
    /// Every report in the registry.
    pub fn all() -> Vec<FaultInfo> {
        use FaultId::*;
        use FaultKind::*;
        use FaultStatus::*;
        use FaultySystem::*;
        use TriggerClass::*;

        let aei = |pm: bool, pd: bool, idx: bool, tlp: bool| Detectability {
            aei: true,
            diff_postgis_mysql: pm,
            diff_postgis_duckdb: pd,
            index: idx,
            tlp,
        };
        let none = Detectability::default();

        vec![
            // ---------------- GEOS analog: 9 logic (1 fixed, 8 confirmed) + 3 crash (fixed)
            FaultInfo {
                id: GeosCoversPrecisionLoss,
                description: "Covers predicate fails on obviously correct simple case (vertex normalization precision loss)",
                system: Geos,
                kind: Logic,
                status: Fixed,
                trigger: Precision,
                detectable_by: aei(false, false, false, false),
                listing: Some(1),
            },
            FaultInfo {
                id: GeosMixedBoundaryLastOneWins,
                description: "GEOMETRYCOLLECTION boundary uses a last-one-wins strategy, misjudging ST_Within",
                system: Geos,
                kind: Logic,
                status: Confirmed,
                trigger: Mixed,
                detectable_by: aei(true, false, false, false),
                listing: Some(6),
            },
            FaultInfo {
                id: GeosPreparedDuplicateDropped,
                description: "Prepared geometry drops a matching pair when identical rows are joined",
                system: Geos,
                kind: Logic,
                status: Confirmed,
                trigger: Prepared,
                detectable_by: aei(true, true, false, false),
                listing: Some(7),
            },
            FaultInfo {
                id: GeosEmptyDistanceRecursion,
                description: "ST_Distance recursion mishandles MULTI geometries containing EMPTY elements",
                system: Geos,
                kind: Logic,
                status: Confirmed,
                trigger: Empty,
                detectable_by: aei(false, false, false, false),
                listing: Some(5),
            },
            FaultInfo {
                id: GeosMixedDimensionFirstElement,
                description: "Dimension of a MIXED geometry computed from its first element, wrong when that element is EMPTY",
                system: Geos,
                kind: Logic,
                status: Confirmed,
                trigger: Empty,
                detectable_by: aei(false, false, false, false),
                listing: None,
            },
            FaultInfo {
                id: GeosIntersectsEmptyFirstElement,
                description: "ST_Intersects short-circuits to false when the first element of a MULTI geometry is EMPTY",
                system: Geos,
                kind: Logic,
                status: Confirmed,
                trigger: Empty,
                detectable_by: aei(true, false, false, false),
                listing: None,
            },
            FaultInfo {
                id: GeosTouchesDirectionSensitive,
                description: "ST_Touches result depends on the stored direction of a LINESTRING argument",
                system: Geos,
                kind: Logic,
                status: Confirmed,
                trigger: Other,
                detectable_by: aei(false, false, false, false),
                listing: None,
            },
            FaultInfo {
                id: GeosEqualsDuplicateVertices,
                description: "ST_Equals returns false for geometries containing consecutive duplicate vertices",
                system: Geos,
                kind: Logic,
                status: Confirmed,
                trigger: Other,
                detectable_by: aei(false, false, false, false),
                listing: None,
            },
            FaultInfo {
                id: GeosDisjointEmptyElementMatrix,
                description: "ST_Disjoint computes a wrong DE-9IM matrix when a MULTI geometry carries an EMPTY element",
                system: Geos,
                kind: Logic,
                status: Confirmed,
                trigger: Empty,
                detectable_by: aei(false, false, false, false),
                listing: None,
            },
            FaultInfo {
                id: GeosCrashConvexHullEmptyCollection,
                description: "Crash computing the convex hull of a collection with only EMPTY elements",
                system: Geos,
                kind: Crash,
                status: Fixed,
                trigger: Empty,
                detectable_by: none,
                listing: None,
            },
            FaultInfo {
                id: GeosCrashPolygonizeDuplicatePoints,
                description: "Crash in ST_Polygonize on linework with consecutive duplicate points",
                system: Geos,
                kind: Crash,
                status: Fixed,
                trigger: Other,
                detectable_by: none,
                listing: None,
            },
            FaultInfo {
                id: GeosCrashRelateShortRing,
                description: "Crash in relate when a polygon ring has fewer than four points",
                system: Geos,
                kind: Crash,
                status: Fixed,
                trigger: Other,
                detectable_by: none,
                listing: None,
            },
            // ---------------- PostGIS-like: 7 logic (6 fixed, 1 confirmed) + 2 crash + 1 unconfirmed + 1 duplicate
            FaultInfo {
                id: PostgisGistIndexDropsRows,
                description: "GiST index scan drops rows with EMPTY or negatively-translated geometries",
                system: PostGis,
                kind: Logic,
                status: Fixed,
                trigger: Index,
                detectable_by: aei(false, false, true, true),
                listing: Some(8),
            },
            FaultInfo {
                id: PostgisDFullyWithinSmallCoords,
                description: "ST_DFullyWithin definition fails for small-magnitude geometries",
                system: PostGis,
                kind: Logic,
                status: Confirmed,
                trigger: Definition,
                detectable_by: aei(false, false, false, false),
                listing: Some(9),
            },
            FaultInfo {
                id: PostgisEqualsSnapToGrid,
                description: "ST_Equals snaps coordinates to a grid before comparison, losing fractional coordinates",
                system: PostGis,
                kind: Logic,
                status: Fixed,
                trigger: Precision,
                detectable_by: aei(false, false, false, false),
                listing: None,
            },
            FaultInfo {
                id: PostgisContainsMultiPolygonFirstOnly,
                description: "ST_Contains with a MULTIPOLYGON container checks only its first polygon",
                system: PostGis,
                kind: Logic,
                status: Fixed,
                trigger: Mixed,
                detectable_by: aei(false, false, false, false),
                listing: None,
            },
            FaultInfo {
                id: PostgisWithinEmptyCollectionMember,
                description: "ST_Within returns false when the containing collection carries an EMPTY member",
                system: PostGis,
                kind: Logic,
                status: Fixed,
                trigger: Empty,
                detectable_by: aei(false, false, false, false),
                listing: None,
            },
            FaultInfo {
                id: PostgisTouchesDuplicateVertices,
                description: "ST_Touches misjudges geometries containing consecutive duplicate vertices",
                system: PostGis,
                kind: Logic,
                status: Fixed,
                trigger: Mixed,
                detectable_by: aei(false, false, false, false),
                listing: None,
            },
            FaultInfo {
                id: PostgisCoveredByRingOrientation,
                description: "ST_CoveredBy result depends on polygon ring orientation",
                system: PostGis,
                kind: Logic,
                status: Fixed,
                trigger: Other,
                detectable_by: aei(false, false, false, false),
                listing: None,
            },
            FaultInfo {
                id: PostgisCrashDumpRingsEmptyMulti,
                description: "Crash in ST_DumpRings on MULTIPOLYGON EMPTY",
                system: PostGis,
                kind: Crash,
                status: Fixed,
                trigger: Empty,
                detectable_by: none,
                listing: None,
            },
            FaultInfo {
                id: PostgisCrashIndexAllEmpty,
                description: "Crash building a GiST index over a column containing only EMPTY geometries",
                system: PostGis,
                kind: Crash,
                status: Fixed,
                trigger: Index,
                detectable_by: none,
                listing: None,
            },
            FaultInfo {
                id: PostgisUnconfirmedEnvelopeEmpty,
                description: "ST_Envelope of an EMPTY geometry returns an unexpected representation",
                system: PostGis,
                kind: Logic,
                status: Unconfirmed,
                trigger: Empty,
                detectable_by: none,
                listing: None,
            },
            FaultInfo {
                id: PostgisDuplicateCoversPrecision,
                description: "Duplicate report of the Covers precision-loss root cause",
                system: PostGis,
                kind: Logic,
                status: Duplicate,
                trigger: Precision,
                detectable_by: none,
                listing: Some(1),
            },
            // ---------------- MySQL-like: 4 logic (1 fixed, 3 confirmed)
            FaultInfo {
                id: MysqlCrossesLargeCoordinates,
                description: "ST_Crosses computes a wrong relation after coordinates are scaled into the hundreds",
                system: MySql,
                kind: Logic,
                status: Fixed,
                trigger: Mixed,
                detectable_by: aei(true, false, false, false),
                listing: Some(3),
            },
            FaultInfo {
                id: MysqlOverlapsAxisOrder,
                description: "ST_Overlaps result changes after swapping the X and Y axes",
                system: MySql,
                kind: Logic,
                status: Confirmed,
                trigger: Mixed,
                detectable_by: aei(false, false, false, false),
                listing: Some(4),
            },
            FaultInfo {
                id: MysqlTouchesEmptyElement,
                description: "ST_Touches misjudges collections containing EMPTY elements",
                system: MySql,
                kind: Logic,
                status: Confirmed,
                trigger: Empty,
                detectable_by: aei(false, false, false, false),
                listing: None,
            },
            FaultInfo {
                id: MysqlDisjointNegativeCoordinates,
                description: "ST_Disjoint mishandles geometries whose coordinates are all negative",
                system: MySql,
                kind: Logic,
                status: Confirmed,
                trigger: Other,
                detectable_by: aei(false, false, true, false),
                listing: None,
            },
            // ---------------- DuckDB-Spatial-like: 5 crash (fixed) + 1 unconfirmed
            FaultInfo {
                id: DuckdbCrashCollectEmptyMixed,
                description: "Crash in ST_Collect over mixed arguments containing EMPTY geometries",
                system: DuckDbSpatial,
                kind: Crash,
                status: Fixed,
                trigger: Empty,
                detectable_by: none,
                listing: None,
            },
            FaultInfo {
                id: DuckdbCrashGeometryNZero,
                description: "Crash in ST_GeometryN when the index argument is zero",
                system: DuckDbSpatial,
                kind: Crash,
                status: Fixed,
                trigger: Other,
                detectable_by: none,
                listing: None,
            },
            FaultInfo {
                id: DuckdbCrashNestedEmptyCollection,
                description: "Crash parsing a nested GEOMETRYCOLLECTION whose inner collection is EMPTY",
                system: DuckDbSpatial,
                kind: Crash,
                status: Fixed,
                trigger: Mixed,
                detectable_by: none,
                listing: None,
            },
            FaultInfo {
                id: DuckdbCrashBoundaryCollection,
                description: "Crash computing ST_Boundary of a GEOMETRYCOLLECTION",
                system: DuckDbSpatial,
                kind: Crash,
                status: Fixed,
                trigger: Mixed,
                detectable_by: none,
                listing: None,
            },
            FaultInfo {
                id: DuckdbCrashCollectionExtractMismatch,
                description: "Crash in ST_CollectionExtract when no element matches the requested type",
                system: DuckDbSpatial,
                kind: Crash,
                status: Fixed,
                trigger: Mixed,
                detectable_by: none,
                listing: None,
            },
            FaultInfo {
                id: DuckdbUnconfirmedEmptyPolygonWkt,
                description: "'POLYGON(EMPTY)' is parsed as NULL instead of POLYGON EMPTY",
                system: DuckDbSpatial,
                kind: Logic,
                status: Unconfirmed,
                trigger: Empty,
                detectable_by: none,
                listing: None,
            },
            // ---------------- SQL-Server-like: 2 unconfirmed
            FaultInfo {
                id: SqlServerUnconfirmedWithinCollection,
                description: "STWithin misjudges GEOMETRYCOLLECTION containers",
                system: SqlServer,
                kind: Logic,
                status: Unconfirmed,
                trigger: Mixed,
                detectable_by: none,
                listing: None,
            },
            FaultInfo {
                id: SqlServerUnconfirmedCrashEmptyMultipoint,
                description: "Crash ingesting MULTIPOINT geometries with EMPTY elements",
                system: SqlServer,
                kind: Crash,
                status: Unconfirmed,
                trigger: Empty,
                detectable_by: none,
                listing: None,
            },
        ]
    }

    /// Extension faults seeded beyond the paper's 35 reports. Kept out of
    /// [`FaultCatalog::all`] so the Table 2/3/4 populations stay pinned to
    /// the paper's counts; lookups ([`FaultCatalog::info`],
    /// [`FaultId::from_name`]) cover both lists.
    pub fn extensions() -> Vec<FaultInfo> {
        vec![FaultInfo {
            id: FaultId::PostgisGistStaleOnMutation,
            description:
                "GiST index keeps the stale pre-update envelope when an UPDATE moves a geometry into the negative-x half-plane",
            system: FaultySystem::PostGis,
            kind: FaultKind::Logic,
            status: FaultStatus::Confirmed,
            trigger: TriggerClass::Index,
            detectable_by: Detectability {
                aei: true,
                index: true,
                ..Detectability::default()
            },
            listing: None,
        }]
    }

    /// Looks up a fault's metadata (extension faults included).
    pub fn info(id: FaultId) -> FaultInfo {
        Self::all()
            .into_iter()
            .chain(Self::extensions())
            .find(|f| f.id == id)
            .expect("every FaultId has catalog metadata")
    }

    /// The reports filed against a given system (Table 2 rows).
    pub fn for_system(system: FaultySystem) -> Vec<FaultInfo> {
        Self::all()
            .into_iter()
            .filter(|f| f.system == system)
            .collect()
    }

    /// The 20 confirmed or fixed logic faults analysed by Table 4.
    pub fn confirmed_logic() -> Vec<FaultInfo> {
        Self::all()
            .into_iter()
            .filter(|f| f.is_confirmed_logic())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_names_round_trip() {
        for info in FaultCatalog::all() {
            assert_eq!(FaultId::from_name(&info.id.name()), Some(info.id));
        }
        assert_eq!(FaultId::from_name("NoSuchFault"), None);
    }

    #[test]
    fn fault_set_name_lists_round_trip() {
        let set = FaultSet::with([
            FaultId::GeosCoversPrecisionLoss,
            FaultId::PostgisGistIndexDropsRows,
        ]);
        assert_eq!(FaultSet::parse_names(&set.to_names()), Ok(set));
        assert_eq!(FaultSet::parse_names(""), Ok(FaultSet::none()));
        assert!(FaultSet::parse_names("Bogus").is_err());
    }

    #[test]
    fn registry_reproduces_table2_totals() {
        let all = FaultCatalog::all();
        assert_eq!(all.len(), 35, "35 reports in total");
        let unique: Vec<_> = all
            .iter()
            .filter(|f| f.status != FaultStatus::Duplicate)
            .collect();
        assert_eq!(unique.len(), 34, "34 unique bugs");
        let count = |s: FaultySystem| FaultCatalog::for_system(s).len();
        assert_eq!(count(FaultySystem::Geos), 12);
        assert_eq!(count(FaultySystem::PostGis), 11);
        assert_eq!(count(FaultySystem::DuckDbSpatial), 6);
        assert_eq!(count(FaultySystem::MySql), 4);
        assert_eq!(count(FaultySystem::SqlServer), 2);
        let fixed = all
            .iter()
            .filter(|f| f.status == FaultStatus::Fixed)
            .count();
        let confirmed = all
            .iter()
            .filter(|f| f.status == FaultStatus::Confirmed)
            .count();
        let unconfirmed = all
            .iter()
            .filter(|f| f.status == FaultStatus::Unconfirmed)
            .count();
        let duplicate = all
            .iter()
            .filter(|f| f.status == FaultStatus::Duplicate)
            .count();
        assert_eq!((fixed, confirmed, unconfirmed, duplicate), (18, 12, 4, 1));
    }

    #[test]
    fn registry_reproduces_table3_split() {
        // 20 confirmed/fixed logic bugs, 10 confirmed/fixed crash bugs.
        let confirmed: Vec<_> = FaultCatalog::all()
            .into_iter()
            .filter(|f| matches!(f.status, FaultStatus::Fixed | FaultStatus::Confirmed))
            .collect();
        assert_eq!(confirmed.len(), 30);
        let logic = confirmed
            .iter()
            .filter(|f| f.kind == FaultKind::Logic)
            .count();
        let crash = confirmed
            .iter()
            .filter(|f| f.kind == FaultKind::Crash)
            .count();
        assert_eq!(logic, 20);
        assert_eq!(crash, 10);
        // Per-system crash counts of Table 3.
        let crash_of = |s: FaultySystem| {
            confirmed
                .iter()
                .filter(|f| f.system == s && f.kind == FaultKind::Crash)
                .count()
        };
        assert_eq!(crash_of(FaultySystem::Geos), 3);
        assert_eq!(crash_of(FaultySystem::PostGis), 2);
        assert_eq!(crash_of(FaultySystem::DuckDbSpatial), 5);
        assert_eq!(crash_of(FaultySystem::MySql), 0);
    }

    #[test]
    fn registry_reproduces_table4_ground_truth() {
        let logic = FaultCatalog::confirmed_logic();
        assert_eq!(logic.len(), 20);
        assert!(
            logic.iter().all(|f| f.detectable_by.aei),
            "AEI detects all 20"
        );
        let pm = logic
            .iter()
            .filter(|f| f.detectable_by.diff_postgis_mysql)
            .count();
        let pd = logic
            .iter()
            .filter(|f| f.detectable_by.diff_postgis_duckdb)
            .count();
        let idx = logic.iter().filter(|f| f.detectable_by.index).count();
        let tlp = logic.iter().filter(|f| f.detectable_by.tlp).count();
        assert_eq!(pm, 4, "PostGIS vs MySQL detects 4");
        assert_eq!(pd, 1, "PostGIS vs DuckDB detects 1");
        assert_eq!(idx, 2, "Index oracle detects 2");
        assert_eq!(tlp, 1, "TLP detects 1");
        let overlooked = logic
            .iter()
            .filter(|f| {
                !f.detectable_by.diff_postgis_mysql
                    && !f.detectable_by.diff_postgis_duckdb
                    && !f.detectable_by.index
                    && !f.detectable_by.tlp
            })
            .count();
        assert_eq!(overlooked, 14, "14 bugs overlooked by all previous methods");
    }

    #[test]
    fn trigger_pattern_counts_match_section_5_2() {
        let logic = FaultCatalog::confirmed_logic();
        let empty = logic
            .iter()
            .filter(|f| f.trigger == TriggerClass::Empty)
            .count();
        // "Among all 20 logic bugs, 6 can be triggered by test cases containing
        // EMPTY elements or geometries."
        assert_eq!(empty, 6);
    }

    #[test]
    fn fault_set_enable_disable() {
        let mut set = FaultSet::none();
        assert!(set.is_empty());
        set.enable(FaultId::GeosCoversPrecisionLoss);
        set.enable(FaultId::GeosCoversPrecisionLoss);
        assert_eq!(set.len(), 1);
        assert!(set.is_active(FaultId::GeosCoversPrecisionLoss));
        set.disable(FaultId::GeosCoversPrecisionLoss);
        assert!(!set.is_active(FaultId::GeosCoversPrecisionLoss));
        let set = FaultSet::with([
            FaultId::MysqlOverlapsAxisOrder,
            FaultId::MysqlTouchesEmptyElement,
        ]);
        assert_eq!(set.iter().count(), 2);
    }

    #[test]
    fn info_lookup_matches_listings() {
        assert_eq!(
            FaultCatalog::info(FaultId::GeosCoversPrecisionLoss).listing,
            Some(1)
        );
        assert_eq!(
            FaultCatalog::info(FaultId::MysqlCrossesLargeCoordinates).listing,
            Some(3)
        );
        assert_eq!(
            FaultCatalog::info(FaultId::PostgisGistIndexDropsRows).listing,
            Some(8)
        );
    }
}
