//! Coverage probes for the engine layer (the "PostGIS module" analog of
//! Table 5). See `spatter_topo::coverage` for the mechanism; this module only
//! contributes the engine-side probe list and convenience helpers.

use spatter_topo::coverage as topo_coverage;

pub use spatter_topo::coverage::{ColdProbeMap, CoverageSnapshot};

/// The probes of the SQL-engine layer.
pub const SDB_PROBES: &[&str] = &[
    "sdb.parse.create_table",
    "sdb.parse.create_index",
    "sdb.parse.insert",
    "sdb.parse.select",
    "sdb.parse.set",
    "sdb.exec.create_table",
    "sdb.exec.drop_table",
    "sdb.exec.create_index",
    "sdb.exec.insert",
    "sdb.exec.update",
    "sdb.exec.delete",
    "sdb.exec.drop_index",
    "sdb.exec.set_variable",
    "sdb.exec.set_setting",
    "sdb.exec.scalar_select",
    "sdb.exec.filter_scan",
    "sdb.exec.join_nested_loop",
    "sdb.exec.join_index_scan",
    "sdb.exec.join_prepared",
    "sdb.exec.join_distance_index",
    "sdb.exec.join_distance_prepared",
    "sdb.exec.order_by",
    "sdb.exec.limit",
    "sdb.exec.knn_index_scan",
    "sdb.exec.count_star",
    "sdb.exec.projection",
    "sdb.expr.column",
    "sdb.expr.variable",
    "sdb.expr.cast_geometry",
    "sdb.expr.function_predicate",
    "sdb.expr.function_editing",
    "sdb.expr.function_measure",
    "sdb.expr.function_accessor",
    "sdb.expr.comparison",
    "sdb.expr.samebox",
    "sdb.expr.logical",
    "sdb.validate.geometry",
    "sdb.fault.logic_path",
    "sdb.fault.crash_path",
];

/// Records an engine-layer probe hit.
pub fn hit(name: &'static str) {
    topo_coverage::hit(name);
}

/// Coverage summary of the engine probes: `(hit, total, fraction)`.
pub fn sdb_coverage() -> (usize, usize, f64) {
    let hit = topo_coverage::hit_count_in(SDB_PROBES);
    let total = SDB_PROBES.len();
    (hit, total, hit as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_are_unique_and_counted_separately_from_topo() {
        let set: std::collections::HashSet<_> = SDB_PROBES.iter().collect();
        assert_eq!(set.len(), SDB_PROBES.len());
        // Other tests of this binary execute engine code concurrently, so
        // only lower bounds on the shared global registry are stable here.
        hit("sdb.exec.insert");
        hit("topo.predicate.intersects");
        let (sdb_hit, sdb_total, _) = sdb_coverage();
        assert!(sdb_hit >= 1);
        assert_eq!(sdb_total, SDB_PROBES.len());
        assert!(topo_coverage::hit_count("sdb.exec.insert") >= 1);
        let (topo_hit, _, _) = topo_coverage::topo_coverage();
        assert!(topo_hit >= 1);
        // An sdb probe never counts towards the topo denominator.
        assert!(!SDB_PROBES
            .iter()
            .any(|p| topo_coverage::TOPO_PROBES.contains(p)));
    }

    #[test]
    fn reexported_snapshot_types_classify_engine_probes() {
        // The snapshot/cold-map machinery lives in spatter_topo::coverage;
        // this re-export makes it addressable from the engine layer with the
        // engine's own probe list.
        let mut snapshot = CoverageSnapshot::new();
        snapshot.absorb(&[("sdb.exec.insert", 3)]);
        let cold = ColdProbeMap::from_snapshot(&snapshot, SDB_PROBES);
        assert!(!cold.is_cold("sdb.exec.insert"));
        assert!(cold.is_cold("sdb.exec.knn_index_scan"));
        assert_eq!(cold.len(), SDB_PROBES.len() - 1);
    }
}
