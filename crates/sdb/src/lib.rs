//! # spatter-sdb
//!
//! An in-process spatial SQL engine standing in for the four SDBMSs the paper
//! tests (PostGIS, MySQL GIS, DuckDB Spatial, SQL Server). The engine accepts
//! the statement shapes the paper's listings and query template use
//! (`CREATE TABLE`, `CREATE INDEX … USING GIST`, `INSERT`, `SET`,
//! `SELECT COUNT(*) FROM a JOIN b ON <predicate>`, scalar `SELECT`s with
//! geometry casts and `ST_*` functions) and evaluates them on top of the
//! shared geometry library (`spatter-geom` + `spatter-topo`, the "GEOS
//! analog") and the R-tree index (`spatter-index`, the GiST analog).
//!
//! Four [`profile::EngineProfile`]s model the tested systems: they differ in
//! which functions they support (`ST_Covers` only exists in the PostGIS-like
//! and DuckDB-like profiles), how strictly they validate geometries
//! (Listing 4's expected discrepancy), and which **seeded faults**
//! ([`faults`]) they carry. The fault registry reproduces the paper's bug
//! census — per-system counts of Table 2, the logic/crash split of Table 3,
//! the root-cause classes of §5.2 and the per-listing behaviours — so that
//! the Spatter tester and its baseline oracles can be evaluated against the
//! same detection problem the authors faced.

pub mod ast;
pub mod catalog;
pub mod coverage;
pub mod engine;
pub mod error;
pub mod faults;
pub mod functions;
pub mod lexer;
pub mod parser;
pub mod profile;
pub mod server;
pub mod value;

pub use engine::{Engine, QueryResult};
pub use error::{SdbError, SdbResult};
pub use faults::{
    FaultCatalog, FaultId, FaultInfo, FaultKind, FaultSet, FaultStatus, TriggerClass,
};
pub use profile::EngineProfile;
pub use value::Value;
