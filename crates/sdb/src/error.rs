//! Engine error model.
//!
//! The paper distinguishes *logic bugs* (silent wrong results) from *crash
//! bugs* (the process aborts). The engine models a crash as the dedicated
//! [`SdbError::Crash`] variant so the tester can classify findings the same
//! way (Table 3) without actually aborting the test process.

use std::fmt;

/// Errors returned by the spatial SQL engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SdbError {
    /// SQL could not be tokenized or parsed.
    Parse(String),
    /// A referenced table, column or variable does not exist, or a statement
    /// is semantically malformed.
    Semantic(String),
    /// A geometry literal was rejected (syntax or, depending on the profile,
    /// semantic validity).
    InvalidGeometry(String),
    /// The function is not supported by the active engine profile (the source
    /// of expected discrepancies between SDBMSs, §1).
    UnsupportedFunction(String),
    /// A runtime evaluation error (type mismatch, out-of-range argument, …).
    Execution(String),
    /// A simulated crash: the paths guarded by seeded crash faults return
    /// this instead of aborting the process.
    Crash(String),
}

impl SdbError {
    /// Whether this error models a crash bug.
    pub fn is_crash(&self) -> bool {
        matches!(self, SdbError::Crash(_))
    }
}

impl fmt::Display for SdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdbError::Parse(m) => write!(f, "parse error: {m}"),
            SdbError::Semantic(m) => write!(f, "semantic error: {m}"),
            SdbError::InvalidGeometry(m) => write!(f, "invalid geometry: {m}"),
            SdbError::UnsupportedFunction(m) => write!(f, "unsupported function: {m}"),
            SdbError::Execution(m) => write!(f, "execution error: {m}"),
            SdbError::Crash(m) => write!(f, "engine crash: {m}"),
        }
    }
}

impl std::error::Error for SdbError {}

/// Convenience alias.
pub type SdbResult<T> = Result<T, SdbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_classification() {
        assert!(SdbError::Crash("segfault in GEOS".into()).is_crash());
        assert!(!SdbError::Execution("bad arg".into()).is_crash());
    }

    #[test]
    fn display_variants() {
        assert_eq!(
            SdbError::Parse("unexpected token".into()).to_string(),
            "parse error: unexpected token"
        );
        assert_eq!(
            SdbError::UnsupportedFunction("ST_Covers".into()).to_string(),
            "unsupported function: ST_Covers"
        );
        assert_eq!(
            SdbError::Crash("boom".into()).to_string(),
            "engine crash: boom"
        );
    }
}
