//! The SQL-over-stdio server: the wire protocol and serve loop behind the
//! `spatter-sdb-server` binary.
//!
//! The server turns the in-process [`Engine`] into something that looks like
//! a real, separate SDBMS process: line-delimited SQL statements arrive on
//! stdin and tagged result/error lines leave on stdout. The
//! `spatter_core::backend::StdioBackend` drives it as an out-of-process
//! engine, which (1) proves the `EngineBackend` abstraction supports engines
//! the tester does not link against, and (2) lets a testing campaign survive
//! an engine crash by respawning the process instead of losing the shard.
//!
//! # Protocol
//!
//! One statement per input line (the SQL dialect never contains newlines —
//! WKT literals are single-line). Responses:
//!
//! ```text
//! READY <profile>          -- handshake, once at startup
//! OK                       -- statement executed, no rows, no mutation effect
//! OK UPDATE <n>            -- UPDATE touched n rows
//! OK DELETE <n>            -- DELETE removed n rows
//! OK DROP-INDEX            -- DROP INDEX removed an index
//! OK DROP-TABLE            -- DROP TABLE removed a table
//! ROWS <n> <count|->       -- result set header, followed by n lines:
//! ROW <first-column-text>
//! ERR crash <message>      -- a (simulated) engine crash
//! ERR error <message>      -- any non-crash engine error
//! ```
//!
//! The `OK <kind> [<n>]` grammar is pinned: `<kind>` is one of the four
//! tokens above, `<n>` is a decimal row count present exactly for `UPDATE`
//! and `DELETE`, and setup statements that carry no mutation effect
//! (`CREATE ...`, `INSERT`, `SET`) keep replying bare `OK`, so pre-mutation
//! clients and servers interoperate on load-once workloads. Replies are
//! newline-terminated frames; a frame truncated anywhere before its final
//! newline decodes as a transport error, never as a shorter valid reply
//! (`OK UPDATE 3` cut to `OK` must not read as a bare success).
//!
//! Only the first column of each row is transmitted: the oracle layer
//! observes either a `COUNT(*)` scalar or the `ST_AsText` column of a KNN
//! result, so this is lossless for every query template while keeping the
//! framing trivial. The header's second field carries the server-side
//! [`QueryResult::count`] (`-` when the result is not a single scalar
//! count), so clients observe exactly the count semantics of the in-process
//! engine instead of re-deriving them from the transmitted columns.
//!
//! In `--hard-crash` mode a simulated crash terminates the server process
//! (exit code 101) instead of replying `ERR crash`, modelling a real DBMS
//! backend dying mid-session; the client sees the transport fail and must
//! reopen.

use crate::engine::{Engine, ExecutionResult, QueryResult};
use crate::error::SdbError;
use crate::faults::FaultSet;
use crate::profile::EngineProfile;
use std::io::{BufRead, Write};

/// The exit code of a `--hard-crash` termination (chosen to match a Rust
/// panic so supervisors treat it as abnormal).
pub const HARD_CRASH_EXIT_CODE: i32 = 101;

/// Configuration of one server process.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The engine profile to run.
    pub profile: EngineProfile,
    /// The seeded faults the engine carries.
    pub faults: FaultSet,
    /// Whether a simulated crash exits the process instead of replying
    /// `ERR crash`.
    pub hard_crash: bool,
}

impl ServerConfig {
    /// Parses the `spatter-sdb-server` command line (the arguments after the
    /// program name):
    ///
    /// ```text
    /// --profile <name>       postgis_like | mysql_like | ... (default postgis_like)
    /// --faults <spec>        "stock", "none", or a comma-separated FaultId list
    ///                        (default stock)
    /// --hard-crash           exit the process on simulated crashes
    /// ```
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Result<ServerConfig, String> {
        let mut profile = EngineProfile::PostgisLike;
        let mut faults_spec = "stock".to_string();
        let mut hard_crash = false;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--profile" => {
                    let name = args.next().ok_or("--profile requires a value")?;
                    profile = EngineProfile::from_name(&name)
                        .ok_or_else(|| format!("unknown profile {name}"))?;
                }
                "--faults" => {
                    faults_spec = args.next().ok_or("--faults requires a value")?;
                }
                "--hard-crash" => hard_crash = true,
                other => return Err(format!("unknown argument {other}")),
            }
        }
        let faults = match faults_spec.as_str() {
            "stock" => profile.default_faults(),
            "none" => FaultSet::none(),
            list => FaultSet::parse_names(list)?,
        };
        Ok(ServerConfig {
            profile,
            faults,
            hard_crash,
        })
    }
}

/// One framed server response (everything after the `READY` handshake).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The statement executed and produced no result rows.
    None,
    /// The statement executed and reported a mutation effect
    /// (`OK UPDATE <n>` and friends).
    Effect(ExecutionResult),
    /// A result set.
    Rows {
        /// The first-column values, in engine row order.
        rows: Vec<String>,
        /// [`QueryResult::count`] evaluated server-side (`None` unless the
        /// result is a single scalar count), so remote clients inherit the
        /// in-process count semantics exactly.
        count: Option<i64>,
    },
    /// The statement failed; `crash` distinguishes simulated engine crashes
    /// from ordinary (semantic/parse/execution) errors.
    Error {
        /// Whether the failure models an engine crash.
        crash: bool,
        /// The error message.
        message: String,
    },
}

impl Response {
    /// Builds the response for an engine execution result.
    pub fn from_result(result: &Result<QueryResult, SdbError>) -> Response {
        match result {
            Ok(result) if result.columns.is_empty() && result.rows.is_empty() => {
                match result.effect {
                    Some(effect) => Response::Effect(effect),
                    None => Response::None,
                }
            }
            Ok(result) => Response::Rows {
                rows: result
                    .rows
                    .iter()
                    .map(|row| {
                        row.first()
                            .map(|value| value.to_string())
                            .unwrap_or_default()
                    })
                    .collect(),
                count: result.count(),
            },
            Err(error) => Response::Error {
                crash: error.is_crash(),
                message: error.to_string(),
            },
        }
    }

    /// Writes the response in wire form.
    pub fn write_to(&self, output: &mut impl Write) -> std::io::Result<()> {
        match self {
            Response::None => writeln!(output, "OK")?,
            Response::Effect(effect) => match effect {
                ExecutionResult::Update { rows_updated } => {
                    writeln!(output, "OK UPDATE {rows_updated}")?
                }
                ExecutionResult::Delete { rows_deleted } => {
                    writeln!(output, "OK DELETE {rows_deleted}")?
                }
                ExecutionResult::DropIndex => writeln!(output, "OK DROP-INDEX")?,
                ExecutionResult::DropTable => writeln!(output, "OK DROP-TABLE")?,
            },
            Response::Rows { rows, count } => {
                let count = count.map_or("-".to_string(), |c| c.to_string());
                writeln!(output, "ROWS {} {count}", rows.len())?;
                for row in rows {
                    writeln!(output, "ROW {}", sanitize_line(row))?;
                }
            }
            Response::Error { crash, message } => {
                let kind = if *crash { "crash" } else { "error" };
                writeln!(output, "ERR {kind} {}", sanitize_line(message))?;
            }
        }
        output.flush()
    }

    /// Reads one response in wire form. An `Err` means the transport broke
    /// (EOF or I/O failure), not that the statement failed.
    pub fn read_from(input: &mut impl BufRead) -> std::io::Result<Response> {
        let header = read_line(input)?;
        if header == "OK" {
            return Ok(Response::None);
        }
        if let Some(rest) = header.strip_prefix("OK ") {
            let (kind, count) = rest.split_once(' ').unwrap_or((rest, ""));
            let rows = || {
                count
                    .parse::<usize>()
                    .map_err(|_| protocol_error(&format!("bad OK row count: {header}")))
            };
            let effect = match kind {
                "UPDATE" => ExecutionResult::Update {
                    rows_updated: rows()?,
                },
                "DELETE" => ExecutionResult::Delete {
                    rows_deleted: rows()?,
                },
                "DROP-INDEX" if count.is_empty() => ExecutionResult::DropIndex,
                "DROP-TABLE" if count.is_empty() => ExecutionResult::DropTable,
                _ => return Err(protocol_error(&format!("bad OK reply: {header}"))),
            };
            return Ok(Response::Effect(effect));
        }
        if let Some(rest) = header.strip_prefix("ROWS ") {
            let (n, count) = rest
                .split_once(' ')
                .ok_or_else(|| protocol_error(&format!("bad ROWS header: {header}")))?;
            let n: usize = n
                .parse()
                .map_err(|_| protocol_error(&format!("bad ROWS header: {header}")))?;
            let count: Option<i64> = match count {
                "-" => None,
                value => Some(
                    value
                        .parse()
                        .map_err(|_| protocol_error(&format!("bad ROWS count: {header}")))?,
                ),
            };
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let line = read_line(input)?;
                let row = line
                    .strip_prefix("ROW ")
                    .ok_or_else(|| protocol_error(&format!("expected ROW line, got {line}")))?;
                rows.push(row.to_string());
            }
            return Ok(Response::Rows { rows, count });
        }
        if let Some(rest) = header.strip_prefix("ERR ") {
            let (kind, message) = rest.split_once(' ').unwrap_or((rest, ""));
            return Ok(Response::Error {
                crash: kind == "crash",
                message: message.to_string(),
            });
        }
        Err(protocol_error(&format!("unrecognised response: {header}")))
    }
}

/// Reads the `READY <profile>` handshake, returning the profile name.
pub fn read_ready(input: &mut impl BufRead) -> std::io::Result<String> {
    let line = read_line(input)?;
    line.strip_prefix("READY ")
        .map(str::to_string)
        .ok_or_else(|| protocol_error(&format!("expected READY handshake, got {line}")))
}

fn read_line(input: &mut impl BufRead) -> std::io::Result<String> {
    let mut line = String::new();
    if input.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the stream",
        ));
    }
    // A frame is newline-terminated; EOF mid-line is a truncated frame, and
    // accepting it would let `OK UPDATE 3` cut to `OK` read as bare success.
    if !line.ends_with('\n') {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            format!("truncated frame: {line}"),
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

fn protocol_error(message: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.to_string())
}

/// Flattens embedded newlines to spaces so a value occupies exactly one wire
/// frame. Used by the server for response payloads and by stdio clients for
/// outgoing SQL: a multi-line statement (legal whitespace for the in-process
/// parser) would otherwise desynchronize the line-delimited protocol and
/// misattribute every subsequent response. Newlines are plain whitespace in
/// the SQL dialect (string literals hold single-line WKT), so flattening
/// preserves meaning.
pub fn sanitize_line(text: &str) -> String {
    if text.contains(['\n', '\r']) {
        text.replace(['\n', '\r'], " ")
    } else {
        text.to_string()
    }
}

/// Runs the serve loop over an engine until the input stream ends. In
/// `hard_crash` mode a simulated crash terminates the whole process with
/// [`HARD_CRASH_EXIT_CODE`] — the response is intentionally never written,
/// exactly like a real backend dying before it can answer.
pub fn serve(
    config: &ServerConfig,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<()> {
    let mut engine = Engine::with_faults(config.profile, config.faults.clone());
    writeln!(output, "READY {}", config.profile.name())?;
    output.flush()?;
    for line in input.lines() {
        let line = line?;
        let sql = line.trim();
        if sql.is_empty() {
            continue;
        }
        let result = engine.execute(sql);
        if config.hard_crash {
            if let Err(error) = &result {
                if error.is_crash() {
                    std::process::exit(HARD_CRASH_EXIT_CODE);
                }
            }
        }
        Response::from_result(&result).write_to(&mut output)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultId;
    use std::io::BufReader;

    fn run(config: &ServerConfig, script: &str) -> Vec<String> {
        let mut output = Vec::new();
        serve(config, BufReader::new(script.as_bytes()), &mut output).unwrap();
        String::from_utf8(output)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    fn reference_config() -> ServerConfig {
        ServerConfig {
            profile: EngineProfile::PostgisLike,
            faults: FaultSet::none(),
            hard_crash: false,
        }
    }

    #[test]
    fn serves_ddl_counts_and_rows() {
        let lines = run(
            &reference_config(),
            "CREATE TABLE t (g geometry)\n\
             INSERT INTO t (g) VALUES ('POINT(0 0)'), ('POINT(3 4)')\n\
             SELECT COUNT(*) FROM t a JOIN t b ON ST_DWithin(a.g, b.g, 5)\n\
             SELECT ST_AsText(a.g) FROM t a ORDER BY ST_Distance(a.g, 'POINT(0 0)'::geometry) LIMIT 1\n",
        );
        assert_eq!(
            lines,
            vec![
                "READY postgis_like",
                "OK",
                "OK",
                "ROWS 1 4",
                "ROW 4",
                "ROWS 1 -",
                "ROW POINT(0 0)",
            ]
        );
    }

    #[test]
    fn serves_errors_with_their_kind() {
        let lines = run(
            &reference_config(),
            "SELECT COUNT(*) FROM missing a JOIN missing b ON ST_Intersects(a.g, b.g)\n\
             NOT EVEN SQL\n",
        );
        assert!(lines[1].starts_with("ERR error "), "{:?}", lines[1]);
        assert!(lines[2].starts_with("ERR error "), "{:?}", lines[2]);
    }

    #[test]
    fn soft_crash_is_reported_not_fatal() {
        let config = ServerConfig {
            profile: EngineProfile::MysqlLike,
            faults: FaultSet::with([FaultId::GeosCrashRelateShortRing]),
            hard_crash: false,
        };
        let lines = run(
            &config,
            "CREATE TABLE t (g geometry)\n\
             INSERT INTO t (g) VALUES ('POLYGON((0 0,1 1,0 0))'), ('POINT(0 0)')\n\
             SELECT COUNT(*) FROM t a JOIN t b ON ST_Intersects(a.g, b.g)\n\
             SELECT COUNT(*) FROM t a JOIN t b ON ST_DWithin(a.g, b.g, 100)\n",
        );
        assert!(lines[3].starts_with("ERR crash "), "{:?}", lines[3]);
        // The engine object survives a simulated crash: later statements run.
        assert_eq!(lines[4], "ROWS 1 4");
    }

    #[test]
    fn serves_mutation_effects_with_pinned_grammar() {
        let lines = run(
            &reference_config(),
            "CREATE TABLE t (id int, g geometry)\n\
             INSERT INTO t (id, g) VALUES (1, 'POINT(0 0)'), (2, 'POINT(3 4)')\n\
             CREATE INDEX idx_t ON t USING GIST (g)\n\
             UPDATE t SET g = 'POINT(9 9)'::geometry WHERE id = 2\n\
             DELETE FROM t WHERE id = 1\n\
             DELETE FROM t WHERE id = 1\n\
             DROP INDEX idx_t\n\
             DROP TABLE t\n",
        );
        assert_eq!(
            lines,
            vec![
                "READY postgis_like",
                // Setup statements carry no effect: bare OK, as before.
                "OK",
                "OK",
                "OK",
                "OK UPDATE 1",
                "OK DELETE 1",
                "OK DELETE 0",
                "OK DROP-INDEX",
                "OK DROP-TABLE",
            ]
        );
    }

    #[test]
    fn every_truncated_reply_prefix_is_a_transport_error() {
        // A reply frame cut anywhere before its final newline must decode as
        // a transport error — never as a shorter valid reply ("OK UPDATE 3"
        // cut to "OK" is the dangerous case) and never as a wrong row set.
        let cases = [
            Response::None,
            Response::Effect(ExecutionResult::Update { rows_updated: 3 }),
            Response::Effect(ExecutionResult::Delete { rows_deleted: 12 }),
            Response::Effect(ExecutionResult::DropIndex),
            Response::Effect(ExecutionResult::DropTable),
            Response::Rows {
                rows: vec!["POINT(0 0)".into(), "7".into()],
                count: None,
            },
            Response::Error {
                crash: true,
                message: "engine crash: boom".into(),
            },
        ];
        for case in &cases {
            let mut wire = Vec::new();
            case.write_to(&mut wire).unwrap();
            for cut in 0..wire.len() {
                let mut reader = BufReader::new(&wire[..cut]);
                let decoded = Response::read_from(&mut reader);
                assert!(
                    decoded.is_err(),
                    "prefix {:?} of {case:?} decoded as {decoded:?}",
                    String::from_utf8_lossy(&wire[..cut]),
                );
            }
            let mut reader = BufReader::new(wire.as_slice());
            assert_eq!(&Response::read_from(&mut reader).unwrap(), case);
        }
    }

    #[test]
    fn malformed_ok_replies_are_rejected() {
        for line in [
            "OK UPDATE\n",
            "OK UPDATE x\n",
            "OK UPDATE -1\n",
            "OK DELETE\n",
            "OK DROP-INDEX 3\n",
            "OK DROP-TABLE 0\n",
            "OK TRUNCATE 5\n",
            "OK \n",
        ] {
            let mut reader = BufReader::new(line.as_bytes());
            assert!(Response::read_from(&mut reader).is_err(), "{line:?}");
        }
    }

    #[test]
    fn responses_round_trip_through_the_wire_form() {
        let cases = [
            Response::None,
            Response::Effect(ExecutionResult::Update { rows_updated: 0 }),
            Response::Effect(ExecutionResult::Update { rows_updated: 41 }),
            Response::Effect(ExecutionResult::Delete { rows_deleted: 1 }),
            Response::Effect(ExecutionResult::DropIndex),
            Response::Effect(ExecutionResult::DropTable),
            Response::Rows {
                rows: vec![],
                count: None,
            },
            Response::Rows {
                rows: vec!["POINT(0 0)".into(), String::new(), "7".into()],
                count: None,
            },
            Response::Rows {
                rows: vec!["5".into()],
                count: Some(5),
            },
            Response::Error {
                crash: true,
                message: "engine crash: boom".into(),
            },
            Response::Error {
                crash: false,
                message: "semantic error: no such table".into(),
            },
        ];
        for case in cases {
            let mut wire = Vec::new();
            case.write_to(&mut wire).unwrap();
            let mut reader = BufReader::new(wire.as_slice());
            assert_eq!(Response::read_from(&mut reader).unwrap(), case);
        }
    }

    #[test]
    fn config_parses_profile_faults_and_mode() {
        let config = ServerConfig::from_args(
            [
                "--profile",
                "mysql_like",
                "--faults",
                "none",
                "--hard-crash",
            ]
            .map(String::from),
        )
        .unwrap();
        assert_eq!(config.profile, EngineProfile::MysqlLike);
        assert!(config.faults.is_empty());
        assert!(config.hard_crash);

        let config = ServerConfig::from_args([] as [String; 0]).unwrap();
        assert_eq!(config.profile, EngineProfile::PostgisLike);
        assert_eq!(config.faults, EngineProfile::PostgisLike.default_faults());

        let config =
            ServerConfig::from_args(["--faults", "GeosCoversPrecisionLoss"].map(String::from))
                .unwrap();
        assert!(config.faults.is_active(FaultId::GeosCoversPrecisionLoss));
        assert_eq!(config.faults.len(), 1);

        assert!(ServerConfig::from_args(["--profile", "oracle"].map(String::from)).is_err());
        assert!(ServerConfig::from_args(["--faults", "Bogus"].map(String::from)).is_err());
        assert!(ServerConfig::from_args(["--bogus"].map(String::from)).is_err());
    }
}
