//! Evaluation of `ST_*` scalar functions, including seeded-fault behaviour.
//!
//! Every function first consults the active [`FaultSet`]: when a fault's
//! trigger pattern matches the arguments, the faulty result (or a simulated
//! crash) is produced instead of the reference result from `spatter-topo`.
//! The trigger patterns are *representation dependent* (element order, EMPTY
//! elements, vertex duplication, coordinate magnitude or sign, ring
//! orientation, …) — this is what makes the faults discoverable by Affine
//! Equivalent Inputs, mirroring the paper's observation that AEI works
//! because the original and transformed databases exercise different paths
//! (§7).

use crate::coverage;
use crate::error::{SdbError, SdbResult};
use crate::faults::{FaultId, FaultSet};
use crate::profile::EngineProfile;
use crate::value::Value;
use spatter_geom::affine::AffineMatrix;
use spatter_geom::orientation::{point_on_segment, ring_orientation, RingOrientation};
use spatter_geom::validity::check_validity;
use spatter_geom::wkt::{parse_wkt, write_wkt};
use spatter_geom::{Coord, Dimension, Geometry, GeometryType, Point};
use spatter_topo::de9im::Position;
use spatter_topo::locate::Location;
use spatter_topo::predicates::{self, NamedPredicate};
use spatter_topo::{boundary, centroid, convex_hull, distance, editing, measures, relate};

/// Evaluation context: the engine profile and its active faults.
#[derive(Debug, Clone, Copy)]
pub struct FunctionContext<'a> {
    /// The engine profile.
    pub profile: EngineProfile,
    /// The enabled faults.
    pub faults: &'a FaultSet,
}

impl<'a> FunctionContext<'a> {
    fn fault(&self, id: FaultId) -> bool {
        self.faults.is_active(id)
    }
}

/// Evaluates a spatial function call.
pub fn evaluate(name: &str, args: &[Value], ctx: &FunctionContext) -> SdbResult<Value> {
    let upper = name.to_ascii_uppercase();
    if !ctx.profile.supports_function(&upper) && upper.starts_with("ST_") {
        return Err(SdbError::UnsupportedFunction(name.to_string()));
    }

    if let Some(predicate) = NamedPredicate::from_function_name(&upper) {
        coverage::hit("sdb.expr.function_predicate");
        let a = geometry_arg(args, 0, ctx)?;
        let b = geometry_arg(args, 1, ctx)?;
        return evaluate_predicate(predicate, &a, &b, ctx).map(Value::Bool);
    }

    match upper.as_str() {
        "ST_GEOMFROMTEXT" => {
            coverage::hit("sdb.expr.function_accessor");
            let text = args
                .first()
                .and_then(|v| v.as_text())
                .ok_or_else(|| SdbError::Execution("ST_GeomFromText expects a string".into()))?;
            Ok(Value::Geometry(parse_geometry_text(text, ctx)?))
        }
        "ST_ASTEXT" => {
            coverage::hit("sdb.expr.function_accessor");
            let g = geometry_arg(args, 0, ctx)?;
            Ok(Value::Text(write_wkt(&g)))
        }
        "ST_ISVALID" => {
            coverage::hit("sdb.expr.function_accessor");
            let g = geometry_arg(args, 0, ctx)?;
            Ok(Value::Bool(check_validity(&g).is_valid()))
        }
        "ST_ISEMPTY" => {
            coverage::hit("sdb.expr.function_accessor");
            let g = geometry_arg(args, 0, ctx)?;
            Ok(Value::Bool(g.is_empty()))
        }
        "ST_GEOMETRYTYPE" => {
            coverage::hit("sdb.expr.function_accessor");
            let g = geometry_arg(args, 0, ctx)?;
            Ok(Value::Text(format!("ST_{}", g.geometry_type().wkt_name())))
        }
        "ST_DIMENSION" => {
            coverage::hit("sdb.expr.function_accessor");
            let g = geometry_arg(args, 0, ctx)?;
            let dim = effective_dimension(&g, ctx);
            Ok(dim
                .value()
                .map(|v| Value::Int(i64::from(v)))
                .unwrap_or(Value::Null))
        }
        "ST_NUMGEOMETRIES" => {
            coverage::hit("sdb.expr.function_accessor");
            let g = geometry_arg(args, 0, ctx)?;
            Ok(Value::Int(g.num_geometries() as i64))
        }
        "ST_RELATE" => {
            coverage::hit("sdb.expr.function_predicate");
            let a = geometry_arg(args, 0, ctx)?;
            let b = geometry_arg(args, 1, ctx)?;
            guard_crash_relate(&a, &b, ctx)?;
            if let Some(pattern) = args.get(2) {
                let pattern = pattern
                    .as_text()
                    .ok_or_else(|| SdbError::Execution("ST_Relate pattern must be text".into()))?;
                return predicates::relate_pattern(&a, &b, pattern)
                    .map(Value::Bool)
                    .ok_or_else(|| SdbError::Execution("malformed DE-9IM pattern".into()));
            }
            Ok(Value::Text(predicates::relate_string(&a, &b)))
        }
        "ST_DISTANCE" => {
            coverage::hit("sdb.expr.function_measure");
            let a = geometry_arg(args, 0, ctx)?;
            let b = geometry_arg(args, 1, ctx)?;
            if ctx.fault(FaultId::GeosEmptyDistanceRecursion)
                && (has_empty_element(&b) || has_empty_element(&a))
            {
                coverage::hit("sdb.fault.logic_path");
                // Faulty recursion: only the first element of the first
                // argument is considered (Listing 5 returns 3 instead of 2).
                let first = a.geometry_n(1).unwrap_or_else(|| a.clone());
                return Ok(distance::distance(&first, &b)
                    .map(Value::Double)
                    .unwrap_or(Value::Null));
            }
            Ok(distance::distance(&a, &b)
                .map(Value::Double)
                .unwrap_or(Value::Null))
        }
        "ST_DWITHIN" => {
            coverage::hit("sdb.expr.function_measure");
            let a = geometry_arg(args, 0, ctx)?;
            let b = geometry_arg(args, 1, ctx)?;
            let d = double_arg(args, 2)?;
            Ok(Value::Bool(evaluate_distance_predicate(
                DistancePredicate::DWithin,
                &a,
                &b,
                d,
                ctx,
            )))
        }
        "ST_DFULLYWITHIN" => {
            coverage::hit("sdb.expr.function_measure");
            let a = geometry_arg(args, 0, ctx)?;
            let b = geometry_arg(args, 1, ctx)?;
            let d = double_arg(args, 2)?;
            Ok(Value::Bool(evaluate_distance_predicate(
                DistancePredicate::DFullyWithin,
                &a,
                &b,
                d,
                ctx,
            )))
        }
        "ST_AREA" => {
            coverage::hit("sdb.expr.function_measure");
            let g = geometry_arg(args, 0, ctx)?;
            Ok(Value::Double(measures::area(&g)))
        }
        "ST_LENGTH" => {
            coverage::hit("sdb.expr.function_measure");
            let g = geometry_arg(args, 0, ctx)?;
            Ok(Value::Double(measures::length(&g)))
        }
        "ST_ENVELOPE" => {
            coverage::hit("sdb.expr.function_editing");
            let g = geometry_arg(args, 0, ctx)?;
            if ctx.fault(FaultId::PostgisUnconfirmedEnvelopeEmpty) && g.is_empty() {
                coverage::hit("sdb.fault.logic_path");
                return Ok(Value::Geometry(Geometry::Point(Point::new(0.0, 0.0))));
            }
            Ok(Value::Geometry(
                editing::envelope_of(&g).map_err(execution)?,
            ))
        }
        "ST_CONVEXHULL" => {
            coverage::hit("sdb.expr.function_editing");
            let g = geometry_arg(args, 0, ctx)?;
            if ctx.fault(FaultId::GeosCrashConvexHullEmptyCollection)
                && g.is_empty()
                && g.num_geometries() > 0
                && matches!(
                    g.geometry_type(),
                    GeometryType::GeometryCollection
                        | GeometryType::MultiPoint
                        | GeometryType::MultiLineString
                        | GeometryType::MultiPolygon
                )
            {
                coverage::hit("sdb.fault.crash_path");
                return Err(SdbError::Crash(
                    "convex hull of collection with only EMPTY elements".into(),
                ));
            }
            Ok(Value::Geometry(convex_hull::convex_hull(&g)))
        }
        "ST_BOUNDARY" => {
            coverage::hit("sdb.expr.function_editing");
            let g = geometry_arg(args, 0, ctx)?;
            if ctx.fault(FaultId::DuckdbCrashBoundaryCollection)
                && matches!(g, Geometry::GeometryCollection(_))
            {
                coverage::hit("sdb.fault.crash_path");
                return Err(SdbError::Crash("boundary of GEOMETRYCOLLECTION".into()));
            }
            Ok(Value::Geometry(boundary::boundary(&g)))
        }
        "ST_CENTROID" => {
            coverage::hit("sdb.expr.function_editing");
            let g = geometry_arg(args, 0, ctx)?;
            Ok(centroid::centroid(&g)
                .map(|p| Value::Geometry(Geometry::Point(p)))
                .unwrap_or(Value::Null))
        }
        "ST_GEOMETRYN" => {
            coverage::hit("sdb.expr.function_accessor");
            let g = geometry_arg(args, 0, ctx)?;
            let n = int_arg(args, 1)?;
            if ctx.fault(FaultId::DuckdbCrashGeometryNZero) && n == 0 {
                coverage::hit("sdb.fault.crash_path");
                return Err(SdbError::Crash("ST_GeometryN with index 0".into()));
            }
            if n <= 0 {
                return Ok(Value::Null);
            }
            Ok(editing::geometry_n(&g, n as usize)
                .map(Value::Geometry)
                .unwrap_or(Value::Null))
        }
        "ST_POINTN" => {
            coverage::hit("sdb.expr.function_accessor");
            let g = geometry_arg(args, 0, ctx)?;
            let n = int_arg(args, 1)?;
            if n <= 0 {
                return Ok(Value::Null);
            }
            Ok(editing::point_n(&g, n as usize)
                .map(Value::Geometry)
                .unwrap_or(Value::Null))
        }
        "ST_COLLECT" => {
            coverage::hit("sdb.expr.function_editing");
            let a = geometry_arg(args, 0, ctx)?;
            let b = geometry_arg(args, 1, ctx)?;
            if ctx.fault(FaultId::DuckdbCrashCollectEmptyMixed)
                && (a.is_empty() || b.is_empty())
                && a.geometry_type() != b.geometry_type()
            {
                coverage::hit("sdb.fault.crash_path");
                return Err(SdbError::Crash(
                    "ST_Collect of mixed EMPTY arguments".into(),
                ));
            }
            Ok(Value::Geometry(
                editing::collect(&a, &b).map_err(execution)?,
            ))
        }
        "ST_REVERSE" => {
            coverage::hit("sdb.expr.function_editing");
            let g = geometry_arg(args, 0, ctx)?;
            Ok(Value::Geometry(editing::reverse(&g).map_err(execution)?))
        }
        "ST_SWAPXY" => {
            coverage::hit("sdb.expr.function_editing");
            let g = geometry_arg(args, 0, ctx)?;
            let mut swapped = g.clone();
            let swap = AffineMatrix::swap_xy();
            swapped.map_coords(&mut |c| *c = swap.apply(*c));
            Ok(Value::Geometry(swapped))
        }
        "ST_SETPOINT" => {
            coverage::hit("sdb.expr.function_editing");
            let g = geometry_arg(args, 0, ctx)?;
            let n = int_arg(args, 1)?;
            let p = geometry_arg(args, 2, ctx)?;
            if n < 0 {
                return Ok(Value::Null);
            }
            Ok(editing::set_point(&g, n as usize, &p)
                .map(Value::Geometry)
                .unwrap_or(Value::Null))
        }
        "ST_FORCEPOLYGONCW" => {
            coverage::hit("sdb.expr.function_editing");
            let g = geometry_arg(args, 0, ctx)?;
            Ok(editing::force_polygon_cw(&g)
                .map(Value::Geometry)
                .unwrap_or(Value::Null))
        }
        "ST_DUMPRINGS" => {
            coverage::hit("sdb.expr.function_editing");
            let g = geometry_arg(args, 0, ctx)?;
            if ctx.fault(FaultId::PostgisCrashDumpRingsEmptyMulti)
                && matches!(&g, Geometry::MultiPolygon(mp) if mp.polygons.is_empty())
            {
                coverage::hit("sdb.fault.crash_path");
                return Err(SdbError::Crash("ST_DumpRings of MULTIPOLYGON EMPTY".into()));
            }
            Ok(editing::dump_rings(&g)
                .map(Value::Geometry)
                .unwrap_or(Value::Null))
        }
        "ST_COLLECTIONEXTRACT" => {
            coverage::hit("sdb.expr.function_editing");
            let g = geometry_arg(args, 0, ctx)?;
            let type_code = int_arg(args, 1)?;
            let target = match type_code {
                1 => GeometryType::Point,
                2 => GeometryType::LineString,
                3 => GeometryType::Polygon,
                _ => {
                    return Err(SdbError::Execution(
                        "ST_CollectionExtract type must be 1, 2 or 3".into(),
                    ))
                }
            };
            let extracted = editing::collection_extract(&g, target).map_err(execution)?;
            if ctx.fault(FaultId::DuckdbCrashCollectionExtractMismatch) && extracted.is_empty() {
                coverage::hit("sdb.fault.crash_path");
                return Err(SdbError::Crash(
                    "ST_CollectionExtract found no element of the requested type".into(),
                ));
            }
            Ok(Value::Geometry(extracted))
        }
        "ST_POLYGONIZE" => {
            coverage::hit("sdb.expr.function_editing");
            let g = geometry_arg(args, 0, ctx)?;
            if ctx.fault(FaultId::GeosCrashPolygonizeDuplicatePoints) && has_duplicate_vertices(&g)
            {
                coverage::hit("sdb.fault.crash_path");
                return Err(SdbError::Crash(
                    "polygonize of linework with duplicate consecutive points".into(),
                ));
            }
            Ok(editing::polygonize(&g)
                .map(Value::Geometry)
                .unwrap_or(Value::Null))
        }
        other => Err(SdbError::UnsupportedFunction(other.to_string())),
    }
}

/// The two distance predicates a join plan can specialize on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistancePredicate {
    /// `ST_DWithin`: minimum distance at most `d`.
    DWithin,
    /// `ST_DFullyWithin`: maximum distance at most `d`.
    DFullyWithin,
}

impl DistancePredicate {
    /// The SQL function name the predicate corresponds to (upper case, as
    /// profile support lists spell it).
    pub fn function_name(self) -> &'static str {
        match self {
            DistancePredicate::DWithin => "ST_DWITHIN",
            DistancePredicate::DFullyWithin => "ST_DFULLYWITHIN",
        }
    }
}

/// Evaluates a distance predicate, applying seeded logic faults. Every
/// physical plan — expression interpreter, prepared join, index join — funnels
/// its per-pair verdict through this single kernel, so plan choice can never
/// change a result. Argument order matters: the `PostgisDFullyWithinSmallCoords`
/// fault triggers on the *first* argument as written in the SQL.
pub fn evaluate_distance_predicate(
    predicate: DistancePredicate,
    a: &Geometry,
    b: &Geometry,
    d: f64,
    ctx: &FunctionContext,
) -> bool {
    if predicate == DistancePredicate::DFullyWithin
        && ctx.fault(FaultId::PostgisDFullyWithinSmallCoords)
        && max_abs_coord(a) < 10.0
    {
        coverage::hit("sdb.fault.logic_path");
        // The "wrong definition" of Listing 9: small-magnitude
        // geometries are judged not fully within any distance.
        return false;
    }
    match predicate {
        DistancePredicate::DWithin => distance::dwithin(a, b, d),
        DistancePredicate::DFullyWithin => distance::dfully_within(a, b, d),
    }
}

/// Evaluates a named topological predicate, applying seeded logic faults.
pub fn evaluate_predicate(
    predicate: NamedPredicate,
    a: &Geometry,
    b: &Geometry,
    ctx: &FunctionContext,
) -> SdbResult<bool> {
    guard_crash_relate(a, b, ctx)?;
    validate_for_profile(a, ctx)?;
    validate_for_profile(b, ctx)?;

    if let Some(result) = faulty_predicate_result(predicate, a, b, ctx) {
        coverage::hit("sdb.fault.logic_path");
        return Ok(result);
    }
    Ok(predicate.evaluate(a, b))
}

/// Returns `Some(result)` when a seeded fault hijacks the predicate.
fn faulty_predicate_result(
    predicate: NamedPredicate,
    a: &Geometry,
    b: &Geometry,
    ctx: &FunctionContext,
) -> Option<bool> {
    use NamedPredicate::*;

    // GEOS: precision loss in vertex normalization (Listing 1). The faulty
    // path requires exact collinearity, so points that are mathematically on
    // a segment but not exactly representable are judged "not covered".
    if ctx.fault(FaultId::GeosCoversPrecisionLoss) {
        match predicate {
            Covers | Contains => {
                if let Some(result) = exact_only_point_on_line(a, b) {
                    return Some(result);
                }
            }
            CoveredBy | Within => {
                if let Some(result) = exact_only_point_on_line(b, a) {
                    return Some(result);
                }
            }
            _ => {}
        }
    }

    // GEOS: "last-one-wins" boundary strategy for GEOMETRYCOLLECTION
    // (Listing 6).
    if ctx.fault(FaultId::GeosMixedBoundaryLastOneWins) {
        match predicate {
            Within | CoveredBy => {
                if let (Geometry::Point(p), Geometry::GeometryCollection(_)) = (a, b) {
                    if let Some(c) = p.coord {
                        return Some(last_one_wins_locate(c, b) == Location::Interior);
                    }
                }
            }
            Contains | Covers => {
                if let (Geometry::GeometryCollection(_), Geometry::Point(p)) = (a, b) {
                    if let Some(c) = p.coord {
                        return Some(last_one_wins_locate(c, a) == Location::Interior);
                    }
                }
            }
            _ => {}
        }
    }

    // GEOS: dimension of a MIXED geometry taken from its first element,
    // which breaks the dimension-dependent branches of Crosses/Overlaps.
    if ctx.fault(FaultId::GeosMixedDimensionFirstElement)
        && matches!(predicate, Crosses | Overlaps)
        && (is_collection_with_empty_first(a) || is_collection_with_empty_first(b))
    {
        return Some(faulty_dimension_predicate(predicate, a, b, ctx));
    }

    // GEOS: Intersects/Disjoint short-circuit when the first element of a
    // MULTI/MIXED geometry is EMPTY.
    if ctx.fault(FaultId::GeosIntersectsEmptyFirstElement)
        && matches!(predicate, Intersects | Disjoint)
        && (first_element_is_empty(a) || first_element_is_empty(b))
    {
        return Some(matches!(predicate, Disjoint));
    }

    // GEOS: Touches depends on the stored direction of a LINESTRING.
    if ctx.fault(FaultId::GeosTouchesDirectionSensitive)
        && predicate == Touches
        && (is_descending_linestring(a) || is_descending_linestring(b))
    {
        return Some(!predicates::touches(a, b));
    }

    // GEOS: Equals fails on consecutive duplicate vertices.
    if ctx.fault(FaultId::GeosEqualsDuplicateVertices)
        && predicate == Equals
        && (has_duplicate_vertices(a) || has_duplicate_vertices(b))
    {
        return Some(false);
    }

    // GEOS: Disjoint computed on envelopes only when EMPTY elements are
    // present.
    if ctx.fault(FaultId::GeosDisjointEmptyElementMatrix)
        && predicate == Disjoint
        && (has_empty_element(a) || has_empty_element(b))
    {
        return Some(!a.envelope().intersects(&b.envelope()));
    }

    // PostGIS: Equals snaps coordinates to an integer grid first.
    if ctx.fault(FaultId::PostgisEqualsSnapToGrid)
        && predicate == Equals
        && (has_fractional_coords(a) || has_fractional_coords(b))
    {
        let snapped_a = snapped(a);
        let snapped_b = snapped(b);
        return Some(predicates::equals(&snapped_a, &snapped_b));
    }

    // PostGIS: Contains with a MULTIPOLYGON container that carries an EMPTY
    // element falls back to checking only its first polygon.
    if ctx.fault(FaultId::PostgisContainsMultiPolygonFirstOnly) && predicate == Contains {
        if let Geometry::MultiPolygon(mp) = a {
            if mp.polygons.len() > 1 && mp.polygons.iter().any(|p| p.is_empty()) {
                let first = Geometry::Polygon(mp.polygons[0].clone());
                return Some(predicates::contains(&first, b));
            }
        }
    }

    // PostGIS: Within fails when the containing collection carries an EMPTY
    // member.
    if ctx.fault(FaultId::PostgisWithinEmptyCollectionMember)
        && predicate == Within
        && matches!(b, Geometry::GeometryCollection(_))
        && has_empty_element(b)
    {
        return Some(false);
    }

    // PostGIS: Touches misjudges geometries with consecutive duplicate
    // vertices.
    if ctx.fault(FaultId::PostgisTouchesDuplicateVertices)
        && predicate == Touches
        && (has_duplicate_vertices(a) || has_duplicate_vertices(b))
    {
        return Some(!predicates::touches(a, b));
    }

    // PostGIS: CoveredBy depends on ring orientation.
    if ctx.fault(FaultId::PostgisCoveredByRingOrientation) && predicate == CoveredBy {
        if let Geometry::Polygon(p) = a {
            if let Some(ring) = p.exterior() {
                if ring_orientation(ring) == RingOrientation::CounterClockwise {
                    return Some(false);
                }
            }
        }
    }

    // MySQL: Crosses miscomputed for large coordinates against collections
    // (Listing 3).
    if ctx.fault(FaultId::MysqlCrossesLargeCoordinates)
        && predicate == Crosses
        && collection_has_multi_element(b)
        && max_abs_coord(a) > 500.0
    {
        return Some(true);
    }

    // MySQL: Overlaps depends on the axis order (Listing 4).
    if ctx.fault(FaultId::MysqlOverlapsAxisOrder) && predicate == Overlaps {
        if let Geometry::GeometryCollection(_) = a {
            let env = a.envelope();
            if !env.is_empty() && env.width() > env.height() {
                return Some(true);
            }
        }
    }

    // MySQL: Touches misjudges collections containing EMPTY elements.
    if ctx.fault(FaultId::MysqlTouchesEmptyElement)
        && predicate == Touches
        && (has_empty_element(a) || has_empty_element(b))
    {
        return Some(true);
    }

    // MySQL: Disjoint mishandles all-negative coordinates.
    if ctx.fault(FaultId::MysqlDisjointNegativeCoordinates)
        && predicate == Disjoint
        && all_coords_negative(a)
        && all_coords_negative(b)
    {
        return Some(true);
    }

    // SQL Server: Within misjudges collection containers (unconfirmed
    // report).
    if ctx.fault(FaultId::SqlServerUnconfirmedWithinCollection)
        && predicate == Within
        && matches!(b, Geometry::GeometryCollection(_))
    {
        return Some(false);
    }

    None
}

/// Crash fault shared by every relate-based evaluation: polygon rings with
/// fewer than four points crash the GEOS-analog relate.
fn guard_crash_relate(a: &Geometry, b: &Geometry, ctx: &FunctionContext) -> SdbResult<()> {
    if ctx.fault(FaultId::GeosCrashRelateShortRing) && (has_short_ring(a) || has_short_ring(b)) {
        coverage::hit("sdb.fault.crash_path");
        return Err(SdbError::Crash(
            "relate on polygon ring with fewer than 4 points".into(),
        ));
    }
    Ok(())
}

/// Parses a WKT literal into a geometry, applying profile validation rules
/// and ingestion-related seeded faults.
pub fn parse_geometry_text(text: &str, ctx: &FunctionContext) -> SdbResult<Geometry> {
    coverage::hit("sdb.expr.cast_geometry");
    if ctx.fault(FaultId::DuckdbCrashNestedEmptyCollection)
        && text
            .to_ascii_uppercase()
            .contains("GEOMETRYCOLLECTION(GEOMETRYCOLLECTION EMPTY")
    {
        coverage::hit("sdb.fault.crash_path");
        return Err(SdbError::Crash(
            "nested EMPTY collection in WKT reader".into(),
        ));
    }
    if ctx.fault(FaultId::SqlServerUnconfirmedCrashEmptyMultipoint)
        && text.to_ascii_uppercase().starts_with("MULTIPOINT")
        && text.to_ascii_uppercase().contains("EMPTY")
        && !text.trim().eq_ignore_ascii_case("MULTIPOINT EMPTY")
    {
        coverage::hit("sdb.fault.crash_path");
        return Err(SdbError::Crash("MULTIPOINT with EMPTY element".into()));
    }
    let geometry = parse_wkt(text).map_err(|e| SdbError::InvalidGeometry(e.to_string()))?;
    if ctx.fault(FaultId::DuckdbUnconfirmedEmptyPolygonWkt)
        && text.trim().eq_ignore_ascii_case("POLYGON(EMPTY)")
    {
        coverage::hit("sdb.fault.logic_path");
        return Err(SdbError::InvalidGeometry(
            "POLYGON(EMPTY) parsed as NULL".into(),
        ));
    }
    Ok(geometry)
}

/// Validation applied by strict profiles before predicates are evaluated:
/// the source of the expected discrepancies of Listing 4 (PostGIS and DuckDB
/// reject collections whose areal members intersect; MySQL accepts them).
pub fn validate_for_profile(geometry: &Geometry, ctx: &FunctionContext) -> SdbResult<()> {
    if !ctx.profile.strict_validation() {
        return Ok(());
    }
    coverage::hit("sdb.validate.geometry");
    let validity = check_validity(geometry);
    if let Some(reason) = validity.reason() {
        return Err(SdbError::InvalidGeometry(reason.to_string()));
    }
    if let Geometry::GeometryCollection(c) = geometry {
        let members: Vec<&Geometry> = c
            .geometries
            .iter()
            .filter(|g| g.dimension() == Dimension::Two)
            .collect();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                let m = relate::relate(members[i], members[j]);
                if m.get(Position::Interior, Position::Interior).is_non_empty() {
                    return Err(SdbError::InvalidGeometry(
                        "collection elements intersect (self-intersection)".into(),
                    ));
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Fault trigger helpers
// ---------------------------------------------------------------------------

/// The covers-style faulty path: when the covered geometry is a point and the
/// covering geometry is linear, require *exact* collinearity.
fn exact_only_point_on_line(cover: &Geometry, covered: &Geometry) -> Option<bool> {
    let Geometry::Point(p) = covered else {
        return None;
    };
    let c = p.coord?;
    let linear = matches!(
        cover.geometry_type(),
        GeometryType::LineString | GeometryType::MultiLineString
    );
    if !linear {
        return None;
    }
    let mut segments = Vec::new();
    collect_segments(cover, &mut segments);
    Some(segments.iter().any(|(a, b)| point_on_segment(c, *a, *b)))
}

fn collect_segments(geometry: &Geometry, out: &mut Vec<(Coord, Coord)>) {
    match geometry {
        Geometry::LineString(l) => out.extend(l.segments()),
        Geometry::MultiLineString(m) => m.lines.iter().for_each(|l| out.extend(l.segments())),
        Geometry::GeometryCollection(c) => {
            c.geometries.iter().for_each(|g| collect_segments(g, out))
        }
        _ => {}
    }
}

/// The "last one wins" locate strategy of the GEOS collection-boundary bug:
/// the location assigned by the last component that touches the point wins.
fn last_one_wins_locate(point: Coord, collection: &Geometry) -> Location {
    let mut last = Location::Exterior;
    for member in collection.flatten() {
        let loc = spatter_topo::locate::locate(point, &member);
        if loc != Location::Exterior {
            last = loc;
        }
    }
    last
}

/// Crosses/Overlaps evaluated with the faulty "dimension of first element"
/// rule for collections.
fn faulty_dimension_predicate(
    predicate: NamedPredicate,
    a: &Geometry,
    b: &Geometry,
    ctx: &FunctionContext,
) -> bool {
    let da = faulty_dimension(a, ctx);
    let db = faulty_dimension(b, ctx);
    let m = relate::relate(a, b);
    match predicate {
        NamedPredicate::Crosses => {
            if da < db {
                m.matches("T*T******").unwrap_or(false)
            } else if da > db {
                m.matches("T*****T**").unwrap_or(false)
            } else if da == Dimension::One {
                m.matches("0********").unwrap_or(false)
            } else {
                false
            }
        }
        NamedPredicate::Overlaps => {
            if da != db {
                false
            } else if da == Dimension::One {
                m.matches("1*T***T**").unwrap_or(false)
            } else {
                m.matches("T*T***T**").unwrap_or(false)
            }
        }
        _ => predicate.evaluate(a, b),
    }
}

fn faulty_dimension(geometry: &Geometry, ctx: &FunctionContext) -> Dimension {
    effective_dimension(geometry, ctx)
}

/// Dimension as reported by the engine; under the first-element fault a
/// collection's dimension comes from its first element only.
fn effective_dimension(geometry: &Geometry, ctx: &FunctionContext) -> Dimension {
    if ctx.fault(FaultId::GeosMixedDimensionFirstElement) {
        if let Geometry::GeometryCollection(c) = geometry {
            return c
                .geometries
                .first()
                .map(|g| g.dimension())
                .unwrap_or(Dimension::Empty);
        }
    }
    geometry.dimension()
}

/// Whether a GEOMETRYCOLLECTION directly contains a MULTI-type element
/// (which element-level homogenization flattens away).
fn collection_has_multi_element(geometry: &Geometry) -> bool {
    match geometry {
        Geometry::GeometryCollection(c) => c
            .geometries
            .iter()
            .any(|g| g.geometry_type().is_multi() || g.geometry_type().is_mixed()),
        _ => false,
    }
}

fn is_collection_with_empty_first(geometry: &Geometry) -> bool {
    match geometry {
        Geometry::GeometryCollection(c) => {
            c.geometries.first().map(|g| g.is_empty()).unwrap_or(false)
        }
        _ => false,
    }
}

fn first_element_is_empty(geometry: &Geometry) -> bool {
    if geometry.num_geometries() < 2 {
        return false;
    }
    geometry
        .geometry_n(1)
        .map(|g| g.is_empty())
        .unwrap_or(false)
}

/// Whether a MULTI or MIXED geometry carries an EMPTY element (the geometry
/// itself being non-empty).
pub fn has_empty_element(geometry: &Geometry) -> bool {
    if geometry.is_empty() {
        return false;
    }
    geometry.flatten().iter().any(|g| g.is_empty())
}

fn is_descending_linestring(geometry: &Geometry) -> bool {
    if let Geometry::LineString(l) = geometry {
        if let (Some(first), Some(last)) = (l.coords.first(), l.coords.last()) {
            return first.lex_cmp(last) == std::cmp::Ordering::Greater;
        }
    }
    false
}

/// Whether any component has two identical consecutive vertices.
pub fn has_duplicate_vertices(geometry: &Geometry) -> bool {
    let mut coords: Vec<Coord> = Vec::new();
    geometry.for_each_coord(&mut |c| coords.push(*c));
    match geometry {
        Geometry::LineString(l) => l.coords.windows(2).any(|w| w[0].approx_eq(&w[1])),
        Geometry::MultiLineString(m) => m
            .lines
            .iter()
            .any(|l| l.coords.windows(2).any(|w| w[0].approx_eq(&w[1]))),
        Geometry::Polygon(p) => p
            .rings
            .iter()
            .any(|r| r.coords.windows(2).any(|w| w[0].approx_eq(&w[1]))),
        Geometry::MultiPolygon(m) => m.polygons.iter().any(|p| {
            p.rings
                .iter()
                .any(|r| r.coords.windows(2).any(|w| w[0].approx_eq(&w[1])))
        }),
        Geometry::GeometryCollection(c) => c.geometries.iter().any(has_duplicate_vertices),
        _ => false,
    }
}

fn has_fractional_coords(geometry: &Geometry) -> bool {
    let mut found = false;
    geometry.for_each_coord(&mut |c| {
        if c.x.fract() != 0.0 || c.y.fract() != 0.0 {
            found = true;
        }
    });
    found
}

fn snapped(geometry: &Geometry) -> Geometry {
    let mut out = geometry.clone();
    out.map_coords(&mut |c| {
        c.x = c.x.round();
        c.y = c.y.round();
    });
    out
}

/// Maximum absolute coordinate of a geometry (0 for EMPTY).
pub fn max_abs_coord(geometry: &Geometry) -> f64 {
    let mut max = 0.0f64;
    geometry.for_each_coord(&mut |c| {
        max = max.max(c.x.abs()).max(c.y.abs());
    });
    max
}

fn all_coords_negative(geometry: &Geometry) -> bool {
    let mut any = false;
    let mut all_negative = true;
    geometry.for_each_coord(&mut |c| {
        any = true;
        if c.x >= 0.0 || c.y >= 0.0 {
            all_negative = false;
        }
    });
    any && all_negative
}

fn has_short_ring(geometry: &Geometry) -> bool {
    match geometry {
        Geometry::Polygon(p) => p.rings.iter().any(|r| !r.is_empty() && r.coords.len() < 4),
        Geometry::MultiPolygon(m) => m
            .polygons
            .iter()
            .any(|p| p.rings.iter().any(|r| !r.is_empty() && r.coords.len() < 4)),
        Geometry::GeometryCollection(c) => c.geometries.iter().any(has_short_ring),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Argument helpers
// ---------------------------------------------------------------------------

fn geometry_arg(args: &[Value], index: usize, ctx: &FunctionContext) -> SdbResult<Geometry> {
    match args.get(index) {
        Some(Value::Geometry(g)) => Ok(g.clone()),
        Some(Value::Text(s)) => parse_geometry_text(s, ctx),
        Some(other) => Err(SdbError::Execution(format!(
            "argument {index} must be a geometry, got {}",
            other.type_name()
        ))),
        None => Err(SdbError::Execution(format!(
            "missing geometry argument {index}"
        ))),
    }
}

fn double_arg(args: &[Value], index: usize) -> SdbResult<f64> {
    args.get(index)
        .and_then(|v| v.as_double())
        .ok_or_else(|| SdbError::Execution(format!("argument {index} must be numeric")))
}

fn int_arg(args: &[Value], index: usize) -> SdbResult<i64> {
    args.get(index)
        .and_then(|v| v.as_int())
        .ok_or_else(|| SdbError::Execution(format!("argument {index} must be an integer")))
}

fn execution(e: spatter_geom::GeomError) -> SdbError {
    SdbError::Execution(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultSet;

    fn ctx_with<'a>(faults: &'a FaultSet, profile: EngineProfile) -> FunctionContext<'a> {
        FunctionContext { profile, faults }
    }

    fn geometry(wkt: &str) -> Value {
        Value::Geometry(parse_wkt(wkt).unwrap())
    }

    #[test]
    fn listing1_covers_fault_reproduces_and_fix_restores() {
        let faults = FaultSet::with([FaultId::GeosCoversPrecisionLoss]);
        let faulty = ctx_with(&faults, EngineProfile::PostgisLike);
        let fixed_set = FaultSet::none();
        let fixed = ctx_with(&fixed_set, EngineProfile::PostgisLike);

        let args = [geometry("LINESTRING(0 1,2 0)"), geometry("POINT(0.2 0.9)")];
        assert_eq!(
            evaluate("ST_Covers", &args, &faulty).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            evaluate("ST_Covers", &args, &fixed).unwrap(),
            Value::Bool(true)
        );

        // The affine-equivalent pair of Listing 2 is answered correctly even
        // by the faulty engine — exactly the discrepancy AEI exploits.
        let args2 = [geometry("LINESTRING(1 1,0 0)"), geometry("POINT(0.9 0.9)")];
        assert_eq!(
            evaluate("ST_Covers", &args2, &faulty).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn listing5_distance_fault() {
        let faults = FaultSet::with([FaultId::GeosEmptyDistanceRecursion]);
        let faulty = ctx_with(&faults, EngineProfile::PostgisLike);
        let none = FaultSet::none();
        let fixed = ctx_with(&none, EngineProfile::PostgisLike);
        let args = [
            geometry("MULTIPOINT((1 0),(0 0))"),
            geometry("MULTIPOINT((-2 0),EMPTY)"),
        ];
        assert_eq!(
            evaluate("ST_Distance", &args, &faulty).unwrap(),
            Value::Double(3.0)
        );
        assert_eq!(
            evaluate("ST_Distance", &args, &fixed).unwrap(),
            Value::Double(2.0)
        );
        // Without the EMPTY element the faulty engine is right too.
        let args = [geometry("MULTIPOINT((1 0),(0 0))"), geometry("POINT(-2 0)")];
        assert_eq!(
            evaluate("ST_Distance", &args, &faulty).unwrap(),
            Value::Double(2.0)
        );
    }

    #[test]
    fn listing6_within_last_one_wins_fault() {
        let faults = FaultSet::with([FaultId::GeosMixedBoundaryLastOneWins]);
        let faulty = ctx_with(&faults, EngineProfile::PostgisLike);
        let none = FaultSet::none();
        let fixed = ctx_with(&none, EngineProfile::PostgisLike);
        let args = [
            geometry("POINT(0 0)"),
            geometry("GEOMETRYCOLLECTION(POINT(0 0),LINESTRING(0 0,1 0))"),
        ];
        assert_eq!(
            evaluate("ST_Within", &args, &faulty).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            evaluate("ST_Within", &args, &fixed).unwrap(),
            Value::Bool(true)
        );
        // With the members reordered (as canonicalization does), the POINT is
        // the last member and the faulty engine answers correctly.
        let args = [
            geometry("POINT(0 0)"),
            geometry("GEOMETRYCOLLECTION(LINESTRING(0 0,1 0),POINT(0 0))"),
        ];
        assert_eq!(
            evaluate("ST_Within", &args, &faulty).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn listing9_dfullywithin_fault() {
        let faults = FaultSet::with([FaultId::PostgisDFullyWithinSmallCoords]);
        let faulty = ctx_with(&faults, EngineProfile::PostgisLike);
        let none = FaultSet::none();
        let fixed = ctx_with(&none, EngineProfile::PostgisLike);
        let args = [
            geometry("LINESTRING(0 0,0 1,1 0,0 0)"),
            geometry("POLYGON((0 0,0 1,1 0,0 0))"),
            Value::Int(100),
        ];
        assert_eq!(
            evaluate("ST_DFullyWithin", &args, &faulty).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            evaluate("ST_DFullyWithin", &args, &fixed).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn listing3_crosses_fault_in_mysql_profile() {
        let faults = FaultSet::with([FaultId::MysqlCrossesLargeCoordinates]);
        let faulty = ctx_with(&faults, EngineProfile::MysqlLike);
        let none = FaultSet::none();
        let fixed = ctx_with(&none, EngineProfile::MysqlLike);
        let args = [
            geometry("MULTILINESTRING((990 280,100 20))"),
            geometry("GEOMETRYCOLLECTION(MULTILINESTRING((990 280,100 20)),POLYGON((360 60,850 620,850 420,360 60)))"),
        ];
        assert_eq!(
            evaluate("ST_Crosses", &args, &faulty).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            evaluate("ST_Crosses", &args, &fixed).unwrap(),
            Value::Bool(false)
        );
        // Scaling the coordinates down by 10 (the affine-equivalent input)
        // avoids the faulty path.
        let args = [
            geometry("MULTILINESTRING((99 28,10 2))"),
            geometry("GEOMETRYCOLLECTION(MULTILINESTRING((99 28,10 2)),POLYGON((36 6,85 62,85 42,36 6)))"),
        ];
        assert_eq!(
            evaluate("ST_Crosses", &args, &faulty).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn listing4_overlaps_fault_depends_on_axis_order() {
        let faults = FaultSet::with([FaultId::MysqlOverlapsAxisOrder]);
        let faulty = ctx_with(&faults, EngineProfile::MysqlLike);
        let g1 = "POLYGON((614 445,30 26,80 30,614 445))";
        let g2 = "GEOMETRYCOLLECTION(POLYGON((614 445,30 26,80 30,614 445)),POLYGON((190 1010,40 90,90 40,190 1010)))";
        // Original orientation: correct result (0 / false).
        let args = [geometry(g2), geometry(g1)];
        assert_eq!(
            evaluate("ST_Overlaps", &args, &faulty).unwrap(),
            Value::Bool(false)
        );
        // After swapping the axes, the faulty path fires and reports true.
        let swapped_g1 = evaluate("ST_SwapXY", &[geometry(g1)], &faulty).unwrap();
        let swapped_g2 = evaluate("ST_SwapXY", &[geometry(g2)], &faulty).unwrap();
        assert_eq!(
            evaluate("ST_Overlaps", &[swapped_g2, swapped_g1], &faulty).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn unsupported_functions_depend_on_profile() {
        let none = FaultSet::none();
        let mysql = ctx_with(&none, EngineProfile::MysqlLike);
        let postgis = ctx_with(&none, EngineProfile::PostgisLike);
        let args = [geometry("POINT(0 0)"), geometry("POINT(0 0)")];
        assert!(matches!(
            evaluate("ST_Covers", &args, &mysql),
            Err(SdbError::UnsupportedFunction(_))
        ));
        assert!(evaluate("ST_Covers", &args, &postgis).is_ok());
    }

    #[test]
    fn strict_profiles_reject_overlapping_collection_members() {
        let none = FaultSet::none();
        let postgis = ctx_with(&none, EngineProfile::PostgisLike);
        let mysql = ctx_with(&none, EngineProfile::MysqlLike);
        let g1 = geometry("POLYGON((614 445,30 26,80 30,614 445))");
        let g2 = geometry("GEOMETRYCOLLECTION(POLYGON((614 445,30 26,80 30,614 445)),POLYGON((190 1010,40 90,90 40,190 1010)))");
        let args = [g2, g1];
        assert!(matches!(
            evaluate("ST_Overlaps", &args, &postgis),
            Err(SdbError::InvalidGeometry(_))
        ));
        assert!(evaluate("ST_Overlaps", &args, &mysql).is_ok());
    }

    #[test]
    fn crash_faults_return_crash_errors() {
        let faults = FaultSet::with([
            FaultId::GeosCrashRelateShortRing,
            FaultId::DuckdbCrashGeometryNZero,
            FaultId::GeosCrashConvexHullEmptyCollection,
        ]);
        let ctx = ctx_with(&faults, EngineProfile::DuckdbSpatialLike);
        let short_ring = geometry("POLYGON((0 0,1 1,0 0))");
        let err =
            evaluate("ST_Intersects", &[short_ring, geometry("POINT(0 0)")], &ctx).unwrap_err();
        assert!(err.is_crash());
        let err = evaluate(
            "ST_GeometryN",
            &[geometry("MULTIPOINT((1 1))"), Value::Int(0)],
            &ctx,
        )
        .unwrap_err();
        assert!(err.is_crash());
        let err = evaluate(
            "ST_ConvexHull",
            &[geometry("GEOMETRYCOLLECTION(POINT EMPTY)")],
            &ctx,
        )
        .unwrap_err();
        assert!(err.is_crash());
    }

    #[test]
    fn accessor_and_measure_functions() {
        let none = FaultSet::none();
        let ctx = ctx_with(&none, EngineProfile::PostgisLike);
        assert_eq!(
            evaluate(
                "ST_Area",
                &[geometry("POLYGON((0 0,4 0,4 4,0 4,0 0))")],
                &ctx
            )
            .unwrap(),
            Value::Double(16.0)
        );
        assert_eq!(
            evaluate("ST_Length", &[geometry("LINESTRING(0 0,3 4)")], &ctx).unwrap(),
            Value::Double(5.0)
        );
        assert_eq!(
            evaluate(
                "ST_NumGeometries",
                &[geometry("MULTIPOINT((1 1),(2 2))")],
                &ctx
            )
            .unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            evaluate("ST_IsEmpty", &[geometry("POINT EMPTY")], &ctx).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            evaluate("ST_Dimension", &[geometry("LINESTRING(0 0,1 1)")], &ctx).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            evaluate("ST_GeometryType", &[geometry("POINT(0 0)")], &ctx).unwrap(),
            Value::Text("ST_POINT".into())
        );
        assert_eq!(
            evaluate("ST_AsText", &[geometry("POINT(1 2)")], &ctx).unwrap(),
            Value::Text("POINT(1 2)".into())
        );
        let from_text =
            evaluate("ST_GeomFromText", &[Value::Text("POINT(3 4)".into())], &ctx).unwrap();
        assert_eq!(from_text, geometry("POINT(3 4)"));
    }

    #[test]
    fn swapxy_swaps_coordinates() {
        let none = FaultSet::none();
        let ctx = ctx_with(&none, EngineProfile::MysqlLike);
        assert_eq!(
            evaluate("ST_SwapXY", &[geometry("LINESTRING(1 2,3 4)")], &ctx).unwrap(),
            geometry("LINESTRING(2 1,4 3)")
        );
    }

    #[test]
    fn text_arguments_are_coerced_to_geometry() {
        let none = FaultSet::none();
        let ctx = ctx_with(&none, EngineProfile::PostgisLike);
        let args = [
            Value::Text("POINT(1 1)".into()),
            Value::Text("POINT(1 1)".into()),
        ];
        assert_eq!(
            evaluate("ST_Equals", &args, &ctx).unwrap(),
            Value::Bool(true)
        );
        assert!(matches!(
            evaluate("ST_Equals", &[Value::Int(1), Value::Int(2)], &ctx),
            Err(SdbError::Execution(_))
        ));
    }

    #[test]
    fn equals_snap_to_grid_fault() {
        let faults = FaultSet::with([FaultId::PostgisEqualsSnapToGrid]);
        let faulty = ctx_with(&faults, EngineProfile::PostgisLike);
        let args = [geometry("POINT(0.4 0)"), geometry("POINT(0 0)")];
        // Snapping makes the two distinct points "equal".
        assert_eq!(
            evaluate("ST_Equals", &args, &faulty).unwrap(),
            Value::Bool(true)
        );
        // Integer coordinates avoid the faulty path.
        let args = [geometry("POINT(4 0)"), geometry("POINT(0 0)")];
        assert_eq!(
            evaluate("ST_Equals", &args, &faulty).unwrap(),
            Value::Bool(false)
        );
    }
}
