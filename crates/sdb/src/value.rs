//! Runtime values of the SQL engine.

use spatter_geom::wkt::write_wkt;
use spatter_geom::Geometry;
use std::fmt;

/// A value produced or consumed by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// Double-precision float.
    Double(f64),
    /// Boolean.
    Bool(bool),
    /// Character string.
    Text(String),
    /// Geometry value.
    Geometry(Geometry),
}

impl Value {
    /// Whether the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interprets the value as a boolean for filtering (`NULL` and non-boolean
    /// values are not truthy; non-zero integers are, matching MySQL).
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Double(d) => *d != 0.0,
            _ => false,
        }
    }

    /// The value as an integer, if it is numeric.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Double(d) => Some(*d as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// The value as a double, if it is numeric.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// The value as a geometry, if it is one.
    pub fn as_geometry(&self) -> Option<&Geometry> {
        match self {
            Value::Geometry(g) => Some(g),
            _ => None,
        }
    }

    /// The value as text, if it is one.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The SQL type name of this value.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Int(_) => "INTEGER",
            Value::Double(_) => "DOUBLE",
            Value::Bool(_) => "BOOLEAN",
            Value::Text(_) => "TEXT",
            Value::Geometry(_) => "GEOMETRY",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Bool(b) => write!(f, "{}", if *b { "t" } else { "f" }),
            Value::Text(s) => write!(f, "{s}"),
            Value::Geometry(g) => write!(f, "{}", write_wkt(g)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatter_geom::wkt::parse_wkt;

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Int(5).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Text("t".into()).is_truthy());
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Int(3).as_double(), Some(3.0));
        assert_eq!(Value::Double(2.5).as_int(), Some(2));
        assert_eq!(Value::Bool(true).as_int(), Some(1));
        assert_eq!(Value::Text("x".into()).as_int(), None);
    }

    #[test]
    fn display_matches_postgres_style_booleans() {
        assert_eq!(Value::Bool(true).to_string(), "t");
        assert_eq!(Value::Bool(false).to_string(), "f");
        assert_eq!(Value::Null.to_string(), "NULL");
        let g = parse_wkt("POINT(1 2)").unwrap();
        assert_eq!(Value::Geometry(g).to_string(), "POINT(1 2)");
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Int(1).type_name(), "INTEGER");
        assert_eq!(
            Value::Geometry(parse_wkt("POINT EMPTY").unwrap()).type_name(),
            "GEOMETRY"
        );
    }
}
