//! SQL tokenizer.

use crate::error::{SdbError, SdbResult};

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords are matched case-insensitively).
    Ident(String),
    /// A user variable such as `@g1`.
    Variable(String),
    /// Numeric literal.
    Number(f64),
    /// Single-quoted string literal (quotes removed, `''` unescaped).
    String(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `;`
    Semicolon,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `::`
    DoubleColon,
    /// `~=`
    SameBox,
}

/// Tokenizes a SQL string.
pub fn tokenize(input: &str) -> SdbResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // SQL line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            b')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            b',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            b'.' if !bytes
                .get(i + 1)
                .map(|c| c.is_ascii_digit())
                .unwrap_or(false) =>
            {
                tokens.push(Token::Dot);
                i += 1;
            }
            b'*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            b';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            b'=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            b'~' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::SameBox);
                i += 2;
            }
            b'!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            b':' if bytes.get(i + 1) == Some(&b':') => {
                tokens.push(Token::DoubleColon);
                i += 2;
            }
            b'\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(SdbError::Parse("unterminated string literal".into())),
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&c) => {
                            s.push(c as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::String(s));
            }
            b'@' => {
                let start = i + 1;
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                if i == start {
                    return Err(SdbError::Parse("empty variable name after '@'".into()));
                }
                tokens.push(Token::Variable(
                    String::from_utf8_lossy(&bytes[start..i]).to_string(),
                ));
            }
            c if c.is_ascii_digit()
                || (c == b'-'
                    && bytes
                        .get(i + 1)
                        .map(|n| n.is_ascii_digit())
                        .unwrap_or(false))
                || (c == b'.'
                    && bytes
                        .get(i + 1)
                        .map(|n| n.is_ascii_digit())
                        .unwrap_or(false)) =>
            {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'-' || bytes[i] == b'+')
                            && matches!(bytes[i - 1], b'e' | b'E')))
                {
                    i += 1;
                }
                let text = std::str::from_utf8(&bytes[start..i])
                    .map_err(|_| SdbError::Parse("invalid number".into()))?;
                let value: f64 = text
                    .parse()
                    .map_err(|_| SdbError::Parse(format!("invalid number literal '{text}'")))?;
                tokens.push(Token::Number(value));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token::Ident(
                    String::from_utf8_lossy(&bytes[start..i]).to_string(),
                ));
            }
            other => {
                return Err(SdbError::Parse(format!(
                    "unexpected character '{}' at byte {i}",
                    other as char
                )))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_listing1_statements() {
        let tokens = tokenize("INSERT INTO t1 (g) VALUES ('LINESTRING(0 1,2 0)');").unwrap();
        assert!(tokens.contains(&Token::Ident("INSERT".into())));
        assert!(tokens.contains(&Token::String("LINESTRING(0 1,2 0)".into())));
        assert_eq!(tokens.last(), Some(&Token::Semicolon));
    }

    #[test]
    fn tokenize_operators() {
        let tokens = tokenize("a ~= b AND c <> d OR e >= -1.5").unwrap();
        assert!(tokens.contains(&Token::SameBox));
        assert!(tokens.contains(&Token::NotEq));
        assert!(tokens.contains(&Token::GtEq));
        assert!(tokens.contains(&Token::Number(-1.5)));
    }

    #[test]
    fn tokenize_cast_and_variable() {
        let tokens = tokenize("SET @g1 = 'POINT(1 2)'::geometry").unwrap();
        assert!(tokens.contains(&Token::Variable("g1".into())));
        assert!(tokens.contains(&Token::DoubleColon));
    }

    #[test]
    fn tokenize_comments_and_escapes() {
        let tokens = tokenize("SELECT 'it''s' -- trailing comment\n, 2").unwrap();
        assert!(tokens.contains(&Token::String("it's".into())));
        assert!(tokens.contains(&Token::Number(2.0)));
    }

    #[test]
    fn tokenize_errors() {
        assert!(tokenize("SELECT 'unterminated").is_err());
        assert!(tokenize("SELECT #").is_err());
        assert!(tokenize("SELECT @ x").is_err());
    }

    #[test]
    fn qualified_column_uses_dot() {
        let tokens = tokenize("t1.g").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("t1".into()),
                Token::Dot,
                Token::Ident("g".into())
            ]
        );
    }
}
